package experiments

import (
	"fmt"
	"strings"

	"accelscore/internal/core"
)

// Headline collects the §I / §IV-C summary numbers for one dataset at the
// paper's flagship configuration (1M records, 128 trees, depth 10).
type Headline struct {
	Dataset string
	// BestBackend is the optimal engine at the flagship configuration.
	BestBackend string
	// FPGASpeedup and GPUSpeedup are over the best CPU (paper: IRIS
	// 54x / 7.5x; HIGGS 69.7x / 16.5x).
	FPGASpeedup float64
	GPUBackend  string
	GPUSpeedup  float64
	// FPGAOverGPU is the FPGA-to-best-GPU ratio (paper: 4.2x on HIGGS).
	FPGAOverGPU float64
	// WrongOffloadLatency is the 1-record penalty for offloading (paper:
	// >=10x); WrongStayThroughput is the 1M-record penalty for staying on
	// the CPU (paper: ~70x).
	WrongOffloadLatency float64
	WrongStayThroughput float64
	// Crossover1Tree and Crossover128Trees are the record counts where
	// offload becomes beneficial (paper: IRIS 10K / 1K; HIGGS 5K / 500).
	Crossover1Tree    int64
	Crossover128Trees int64
}

// Headlines computes the summary numbers for both datasets.
func (s *Suite) Headlines() ([]Headline, error) {
	var out []Headline
	for _, shape := range []DatasetShape{IrisShape, HiggsShape} {
		h := Headline{Dataset: shape.Name}
		cfg := shape.config(128, 10, 1_000_000)
		d, err := s.TB.Advisor.Decide(cfg)
		if err != nil {
			return nil, err
		}
		h.BestBackend = d.Best.Name

		fpgaTl, err := s.TB.FPGA.Estimate(cfg.Stats(), cfg.Records)
		if err != nil {
			return nil, err
		}
		h.FPGASpeedup = float64(d.BestCPU.Time) / float64(fpgaTl.Total())

		// Best GPU at the flagship point.
		best := core.BackendTime{}
		for _, name := range []string{"GPU_HB", "GPU_RAPIDS"} {
			b, _ := s.TB.Registry.Get(name)
			tl, err := b.Estimate(cfg.Stats(), cfg.Records)
			if err != nil {
				continue
			}
			if best.Name == "" || tl.Total() < best.Time {
				best = core.BackendTime{Name: name, Time: tl.Total()}
			}
		}
		h.GPUBackend = best.Name
		h.GPUSpeedup = float64(d.BestCPU.Time) / float64(best.Time)
		h.FPGAOverGPU = float64(best.Time) / float64(fpgaTl.Total())

		pen, err := s.TB.Advisor.PenaltyAnalysis(shape.config(128, 10, 0), 1, 1_000_000)
		if err != nil {
			return nil, err
		}
		h.WrongOffloadLatency = pen.WrongOffloadLatency
		h.WrongStayThroughput = pen.WrongStayThroughput

		if h.Crossover1Tree, err = s.TB.Advisor.Crossover(shape.config(1, 10, 0), 1, 2_000_000); err != nil {
			return nil, err
		}
		if h.Crossover128Trees, err = s.TB.Advisor.Crossover(shape.config(128, 10, 0), 1, 2_000_000); err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// RenderHeadlines renders the summary alongside the paper's reported
// values.
func RenderHeadlines(hs []Headline) string {
	paper := map[string][6]string{
		"IRIS":  {"54x", "7.5x (GPU_HB)", "7.2x", ">=10x", "~54x", "10K / 1K"},
		"HIGGS": {"69.7x", "16.5x (GPU_RAPIDS)", "4.2x", ">=10x", "~70x", "5K / 500"},
	}
	var sb strings.Builder
	sb.WriteString("Headline ratios at 1M records, 128 trees, depth 10 (paper §I / §IV-C)\n\n")
	for _, h := range hs {
		p := paper[h.Dataset]
		fmt.Fprintf(&sb, "%s (best backend: %s)\n", h.Dataset, h.BestBackend)
		fmt.Fprintf(&sb, "  FPGA speedup over best CPU:   %7.1fx   (paper: %s)\n", h.FPGASpeedup, p[0])
		fmt.Fprintf(&sb, "  GPU speedup over best CPU:    %7.1fx %s (paper: %s)\n", h.GPUSpeedup, h.GPUBackend, p[1])
		fmt.Fprintf(&sb, "  FPGA over best GPU:           %7.1fx   (paper: %s)\n", h.FPGAOverGPU, p[2])
		fmt.Fprintf(&sb, "  wrong-offload latency cost:   %7.1fx   (paper: %s)\n", h.WrongOffloadLatency, p[3])
		fmt.Fprintf(&sb, "  wrong-stay throughput cost:   %7.1fx   (paper: %s)\n", h.WrongStayThroughput, p[4])
		fmt.Fprintf(&sb, "  offload crossover (1t/128t):  %s / %s records (paper: %s)\n\n",
			formatCount(h.Crossover1Tree), formatCount(h.Crossover128Trees), p[5])
	}
	return sb.String()
}
