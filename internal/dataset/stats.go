package dataset

import (
	"fmt"
	"math"

	"accelscore/internal/xrand"
)

// FeatureStats summarizes one column.
type FeatureStats struct {
	Name     string
	Min, Max float32
	Mean     float64
	StdDev   float64
}

// Stats computes per-feature summaries in one pass.
func (d *Dataset) Stats() []FeatureStats {
	f := d.NumFeatures()
	n := d.NumRecords()
	out := make([]FeatureStats, f)
	for j := 0; j < f; j++ {
		out[j] = FeatureStats{
			Name: d.FeatureNames[j],
			Min:  float32(math.Inf(1)),
			Max:  float32(math.Inf(-1)),
		}
	}
	if n == 0 {
		return out
	}
	sums := make([]float64, f)
	sqs := make([]float64, f)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v < out[j].Min {
				out[j].Min = v
			}
			if v > out[j].Max {
				out[j].Max = v
			}
			sums[j] += float64(v)
			sqs[j] += float64(v) * float64(v)
		}
	}
	for j := 0; j < f; j++ {
		mean := sums[j] / float64(n)
		out[j].Mean = mean
		variance := sqs[j]/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		out[j].StdDev = math.Sqrt(variance)
	}
	return out
}

// Standardize returns a copy of the dataset with each feature shifted to
// zero mean and scaled to unit standard deviation (constant columns are
// left centered only). The returned stats allow applying the same transform
// to other data.
func (d *Dataset) Standardize() (*Dataset, []FeatureStats) {
	stats := d.Stats()
	f := d.NumFeatures()
	out := &Dataset{
		Name:         d.Name,
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
		X:            make([]float32, len(d.X)),
		Y:            append([]int(nil), d.Y...),
	}
	for i := 0; i < d.NumRecords(); i++ {
		src := d.Row(i)
		dst := out.X[i*f : (i+1)*f]
		for j, v := range src {
			centered := float64(v) - stats[j].Mean
			if stats[j].StdDev > 0 {
				centered /= stats[j].StdDev
			}
			dst[j] = float32(centered)
		}
	}
	return out, stats
}

// StratifiedSplit partitions the dataset into train and test subsets
// preserving per-class proportions — important for small classes when the
// plain shuffle split would starve them. testFrac must be in (0, 1).
func (d *Dataset) StratifiedSplit(testFrac float64, rng *xrand.Rand) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: testFrac %v out of (0,1)", testFrac)
	}
	if len(d.Y) == 0 {
		return nil, nil, fmt.Errorf("dataset: stratified split requires labels")
	}
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	// Iterate classes in order for determinism.
	for c := 0; c < d.NumClasses(); c++ {
		rows := byClass[c]
		if len(rows) == 0 {
			continue
		}
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		nTest := int(float64(len(rows)) * testFrac)
		if nTest == 0 && len(rows) > 1 {
			nTest = 1
		}
		testIdx = append(testIdx, rows[:nTest]...)
		trainIdx = append(trainIdx, rows[nTest:]...)
	}
	build := func(idx []int) *Dataset {
		f := d.NumFeatures()
		out := &Dataset{
			Name:         d.Name,
			FeatureNames: append([]string(nil), d.FeatureNames...),
			ClassNames:   append([]string(nil), d.ClassNames...),
			X:            make([]float32, len(idx)*f),
			Y:            make([]int, len(idx)),
		}
		for i, j := range idx {
			copy(out.X[i*f:(i+1)*f], d.Row(j))
			out.Y[i] = d.Y[j]
		}
		return out
	}
	return build(trainIdx), build(testIdx), nil
}
