package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset as CSV: a header row with feature names plus a
// trailing "label" column when labels are present, then one row per record.
// Labels are written as class names when available, else as indices.
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	hasLabels := len(d.Y) > 0
	header := append([]string(nil), d.FeatureNames...)
	if hasLabels {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := d.NumFeatures()
	record := make([]string, len(header))
	for i := 0; i < d.NumRecords(); i++ {
		row := d.Row(i)
		for j := 0; j < f; j++ {
			record[j] = strconv.FormatFloat(float64(row[j]), 'g', -1, 32)
		}
		if hasLabels {
			y := d.Y[i]
			if y < len(d.ClassNames) {
				record[f] = d.ClassNames[y]
			} else {
				record[f] = strconv.Itoa(y)
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. A final column named "label"
// is treated as the class column; class names are collected in order of
// first appearance.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	hasLabels := len(header) > 0 && header[len(header)-1] == "label"
	nFeatures := len(header)
	if hasLabels {
		nFeatures--
	}
	if nFeatures == 0 {
		return nil, fmt.Errorf("dataset: CSV %q has no feature columns", name)
	}
	d := &Dataset{
		Name:         name,
		FeatureNames: append([]string(nil), header[:nFeatures]...),
	}
	classIndex := map[string]int{}
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", line, len(record), len(header))
		}
		for j := 0; j < nFeatures; j++ {
			v, err := strconv.ParseFloat(record[j], 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %q: %w", line, header[j], err)
			}
			d.X = append(d.X, float32(v))
		}
		if hasLabels {
			label := record[nFeatures]
			idx, ok := classIndex[label]
			if !ok {
				idx = len(d.ClassNames)
				classIndex[label] = idx
				d.ClassNames = append(d.ClassNames, label)
			}
			d.Y = append(d.Y, idx)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
