package dataset

import (
	"fmt"
	"math"

	"accelscore/internal/xrand"
)

// Higgs generates a synthetic stand-in for the UCI HIGGS dataset (Baldi et
// al. 2014, paper ref [36]): a binary classification problem with 28
// features — 21 low-level detector kinematics plus 7 derived high-level
// quantities — distinguishing Higgs-producing signal processes from
// background.
//
// Substitution note (DESIGN.md §2): the real 11M-row download is unavailable
// offline. What the paper's experiments depend on is the *shape* of the
// dataset — 28 features, two classes, learnable but non-trivial structure
// that yields large random-forest models — all of which this generator
// reproduces. Signal events receive shifted lepton/jet momenta and
// reconstructed-mass distributions (the same features Baldi et al. identify
// as discriminative); the 7 high-level features are deterministic functions
// of low-level features plus resolution noise, so forests discover genuine
// feature interactions rather than memorizing noise.
//
// Generation is deterministic in (n, seed).
func Higgs(n int, seed uint64) *Dataset {
	if n < 0 {
		panic(fmt.Sprintf("dataset: Higgs(%d)", n))
	}
	rng := xrand.New(seed)
	d := &Dataset{
		Name:         "HIGGS",
		FeatureNames: higgsFeatureNames(),
		ClassNames:   []string{"background", "signal"},
		X:            make([]float32, n*28),
		Y:            make([]int, n),
	}
	for i := 0; i < n; i++ {
		label := 0
		// The real dataset is ~53% signal.
		if rng.Float64() < 0.53 {
			label = 1
		}
		d.Y[i] = label
		writeHiggsRow(d.X[i*28:(i+1)*28], label, rng)
	}
	return d
}

func higgsFeatureNames() []string {
	return []string{
		// 21 low-level features.
		"lepton_pT", "lepton_eta", "lepton_phi",
		"missing_energy_magnitude", "missing_energy_phi",
		"jet1_pt", "jet1_eta", "jet1_phi", "jet1_btag",
		"jet2_pt", "jet2_eta", "jet2_phi", "jet2_btag",
		"jet3_pt", "jet3_eta", "jet3_phi", "jet3_btag",
		"jet4_pt", "jet4_eta", "jet4_phi", "jet4_btag",
		// 7 high-level derived features.
		"m_jj", "m_jjj", "m_lv", "m_jlv", "m_bb", "m_wbb", "m_wwbb",
	}
}

// writeHiggsRow fills row (length 28) with one event.
func writeHiggsRow(row []float32, label int, rng *xrand.Rand) {
	sig := float64(label) // 1 for signal, 0 for background

	// Transverse momenta follow long-tailed distributions; signal events
	// have slightly harder leptons and leading jets.
	leptonPT := lognormal(rng, 0.0+0.18*sig, 0.5)
	leptonEta := rng.NormFloat64() * (1.0 - 0.1*sig)
	leptonPhi := uniformPhi(rng)

	missE := lognormal(rng, 0.05+0.22*sig, 0.55)
	missPhi := uniformPhi(rng)

	type jet struct{ pt, eta, phi, btag float64 }
	jets := make([]jet, 4)
	for j := range jets {
		hardness := 0.15 * sig * math.Exp(-float64(j)*0.7)
		jets[j] = jet{
			pt:  lognormal(rng, -0.1*float64(j)+hardness, 0.5),
			eta: rng.NormFloat64() * 1.2,
			phi: uniformPhi(rng),
			// b-tagging output: signal events (H->bb) have more b-jets.
			btag: btagOutput(rng, sig, j),
		}
	}

	// High-level features: invariant-mass-like combinations of the
	// low-level quantities plus detector resolution noise. Signal events
	// concentrate m_bb near the Higgs mass scale (dimensionless here).
	noise := func() float64 { return 1 + 0.08*rng.NormFloat64() }
	mjj := math.Sqrt(2*jets[0].pt*jets[1].pt*
		(math.Cosh(jets[0].eta-jets[1].eta)-math.Cos(jets[0].phi-jets[1].phi))+1e-9) * noise()
	mjjj := (mjj + jets[2].pt*0.8) * noise()
	mlv := math.Sqrt(2*leptonPT*missE*(1-math.Cos(leptonPhi-missPhi))+1e-9) * noise()
	mjlv := (mlv + jets[0].pt*0.6) * noise()
	// m_bb is the most discriminative feature in the real dataset: signal
	// peaks around the Higgs mass, background is broad.
	mbb := 0.0
	if label == 1 {
		mbb = 1.25 + 0.12*rng.NormFloat64()
	} else {
		mbb = lognormal(rng, -0.15, 0.55)
	}
	mwbb := (mbb + mlv*0.7) * noise()
	mwwbb := (mwbb + mjj*0.5) * noise()

	vals := []float64{
		leptonPT, leptonEta, leptonPhi,
		missE, missPhi,
		jets[0].pt, jets[0].eta, jets[0].phi, jets[0].btag,
		jets[1].pt, jets[1].eta, jets[1].phi, jets[1].btag,
		jets[2].pt, jets[2].eta, jets[2].phi, jets[2].btag,
		jets[3].pt, jets[3].eta, jets[3].phi, jets[3].btag,
		mjj, mjjj, mlv, mjlv, mbb, mwbb, mwwbb,
	}
	for i, v := range vals {
		row[i] = float32(v)
	}
}

// lognormal samples exp(N(mu, sigma^2)).
func lognormal(rng *xrand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// uniformPhi samples an azimuthal angle in [-pi, pi).
func uniformPhi(rng *xrand.Rand) float64 {
	return rng.Float64()*2*math.Pi - math.Pi
}

// btagOutput mimics the discretized b-tagger outputs in the real dataset:
// values cluster at 0 (untagged) with signal-dependent tagged mass points.
func btagOutput(rng *xrand.Rand, sig float64, jetIndex int) float64 {
	tagProb := 0.25 + 0.35*sig*math.Exp(-float64(jetIndex)*0.5)
	if rng.Float64() < tagProb {
		return 1.0 + rng.Float64()*1.5
	}
	return 0
}
