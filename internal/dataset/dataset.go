// Package dataset provides the tabular datasets used by the paper's
// evaluation: the UCI IRIS multi-class dataset (embedded verbatim and
// replicated to 1M rows exactly as the paper does, §IV-A) and a synthetic
// stand-in for the UCI HIGGS binary dataset (28 features), plus the generic
// dataset plumbing every other package shares: replication, splitting, CSV
// I/O and size accounting.
package dataset

import (
	"fmt"

	"accelscore/internal/xrand"
)

// BytesPerValue is the storage width of one feature value (float32),
// matching the FPGA node layout and the transfer-size arithmetic used by
// every backend.
const BytesPerValue = 4

// Dataset is an in-memory table of float32 features with integer class
// labels. Rows are stored flat in row-major order.
type Dataset struct {
	// Name identifies the dataset in reports ("IRIS", "HIGGS", ...).
	Name string
	// FeatureNames has one entry per column.
	FeatureNames []string
	// ClassNames has one entry per distinct label value.
	ClassNames []string
	// X holds NumRecords x NumFeatures values, row-major.
	X []float32
	// Y holds one class index per row; may be empty for unlabeled scoring
	// inputs.
	Y []int
}

// NumRecords returns the number of rows.
func (d *Dataset) NumRecords() int {
	if len(d.FeatureNames) == 0 {
		return 0
	}
	return len(d.X) / len(d.FeatureNames)
}

// NumFeatures returns the number of columns.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// NumClasses returns the number of distinct classes.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// Row returns the feature slice for row i. The slice aliases the dataset's
// storage; callers must not modify it.
func (d *Dataset) Row(i int) []float32 {
	f := d.NumFeatures()
	return d.X[i*f : (i+1)*f]
}

// SizeBytes returns the payload size of the feature matrix — the quantity
// every backend's transfer model charges for.
func (d *Dataset) SizeBytes() int64 {
	return int64(len(d.X)) * BytesPerValue
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation found.
func (d *Dataset) Validate() error {
	f := d.NumFeatures()
	if f == 0 {
		if len(d.X) != 0 {
			return fmt.Errorf("dataset %q: %d values but no feature names", d.Name, len(d.X))
		}
		return nil
	}
	if len(d.X)%f != 0 {
		return fmt.Errorf("dataset %q: %d values not divisible by %d features", d.Name, len(d.X), f)
	}
	n := d.NumRecords()
	if len(d.Y) != 0 && len(d.Y) != n {
		return fmt.Errorf("dataset %q: %d labels for %d records", d.Name, len(d.Y), n)
	}
	for i, y := range d.Y {
		if y < 0 || (d.NumClasses() > 0 && y >= d.NumClasses()) {
			return fmt.Errorf("dataset %q: label %d at row %d out of range [0,%d)", d.Name, y, i, d.NumClasses())
		}
	}
	return nil
}

// Replicate returns a new dataset with exactly n rows obtained by cycling
// through the receiver's rows in order. The paper uses this construction to
// grow IRIS's 150 samples to 1M scoring records (§IV-A).
func (d *Dataset) Replicate(n int) *Dataset {
	if n < 0 {
		panic(fmt.Sprintf("dataset: Replicate(%d)", n))
	}
	src := d.NumRecords()
	if src == 0 {
		panic("dataset: Replicate on empty dataset")
	}
	f := d.NumFeatures()
	out := &Dataset{
		Name:         d.Name,
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
		X:            make([]float32, n*f),
		Y:            nil,
	}
	if len(d.Y) > 0 {
		out.Y = make([]int, n)
	}
	for i := 0; i < n; i++ {
		j := i % src
		copy(out.X[i*f:(i+1)*f], d.Row(j))
		if out.Y != nil {
			out.Y[i] = d.Y[j]
		}
	}
	return out
}

// Concat merges several datasets with identical feature counts into one, in
// order — the row-merge behind request coalescing: concurrent scoring queries
// against the same model are scored as a single concatenated batch and the
// prediction slices fanned back out. Labels are dropped (scoring inputs do
// not need them) and feature names are taken from the first part.
func Concat(parts []*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: Concat of zero datasets")
	}
	first := parts[0]
	f := first.NumFeatures()
	total := 0
	for _, p := range parts {
		if p.NumFeatures() != f {
			return nil, fmt.Errorf("dataset: Concat feature mismatch: %q has %d features, %q has %d",
				first.Name, f, p.Name, p.NumFeatures())
		}
		total += p.NumRecords()
	}
	out := &Dataset{
		Name:         first.Name,
		FeatureNames: append([]string(nil), first.FeatureNames...),
		ClassNames:   append([]string(nil), first.ClassNames...),
		X:            make([]float32, 0, total*f),
	}
	for _, p := range parts {
		out.X = append(out.X, p.X...)
	}
	return out, nil
}

// Head returns a dataset view of the first n rows (copied). If n exceeds the
// record count the whole dataset is copied.
func (d *Dataset) Head(n int) *Dataset {
	if n > d.NumRecords() {
		n = d.NumRecords()
	}
	f := d.NumFeatures()
	out := &Dataset{
		Name:         d.Name,
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
		X:            append([]float32(nil), d.X[:n*f]...),
	}
	if len(d.Y) >= n {
		out.Y = append([]int(nil), d.Y[:n]...)
	}
	return out
}

// Split partitions the dataset into train and test subsets, shuffling rows
// with the given generator. testFrac must be in (0, 1).
func (d *Dataset) Split(testFrac float64, rng *xrand.Rand) (train, test *Dataset) {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataset: testFrac %v out of (0,1)", testFrac))
	}
	n := d.NumRecords()
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	build := func(idx []int) *Dataset {
		f := d.NumFeatures()
		out := &Dataset{
			Name:         d.Name,
			FeatureNames: append([]string(nil), d.FeatureNames...),
			ClassNames:   append([]string(nil), d.ClassNames...),
			X:            make([]float32, len(idx)*f),
		}
		if len(d.Y) > 0 {
			out.Y = make([]int, len(idx))
		}
		for i, j := range idx {
			copy(out.X[i*f:(i+1)*f], d.Row(j))
			if out.Y != nil {
				out.Y[i] = d.Y[j]
			}
		}
		return out
	}
	return build(perm[nTest:]), build(perm[:nTest])
}

// ClassCounts returns the number of rows per class label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for _, y := range d.Y {
		if y >= 0 && y < len(counts) {
			counts[y]++
		}
	}
	return counts
}
