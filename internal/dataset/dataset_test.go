package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"accelscore/internal/xrand"
)

func TestIrisShape(t *testing.T) {
	d := Iris()
	if d.NumRecords() != 150 || d.NumFeatures() != 4 || d.NumClasses() != 3 {
		t.Fatalf("IRIS shape = %dx%d classes=%d", d.NumRecords(), d.NumFeatures(), d.NumClasses())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 50 {
			t.Fatalf("class %d has %d samples, want 50", c, n)
		}
	}
	// Spot-check canonical values.
	if d.Row(0)[0] != 5.1 || d.Row(149)[3] != 1.8 {
		t.Fatalf("IRIS values wrong: first=%v last=%v", d.Row(0), d.Row(149))
	}
}

func TestIrisIsACopy(t *testing.T) {
	a := Iris()
	a.X[0] = -1
	a.Y[0] = 2
	b := Iris()
	if b.X[0] == -1 || b.Y[0] == 2 {
		t.Fatal("Iris() returns shared storage")
	}
}

func TestHiggsShape(t *testing.T) {
	d := Higgs(1000, 7)
	if d.NumRecords() != 1000 || d.NumFeatures() != 28 || d.NumClasses() != 2 {
		t.Fatalf("HIGGS shape = %dx%d classes=%d", d.NumRecords(), d.NumFeatures(), d.NumClasses())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHiggsDeterministic(t *testing.T) {
	a := Higgs(500, 42)
	b := Higgs(500, 42)
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("HIGGS not deterministic at value %d", i)
		}
	}
	c := Higgs(500, 43)
	diff := false
	for i := range a.X {
		if a.X[i] != c.X[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical HIGGS data")
	}
}

func TestHiggsClassBalance(t *testing.T) {
	d := Higgs(20000, 1)
	counts := d.ClassCounts()
	frac := float64(counts[1]) / 20000
	if frac < 0.50 || frac > 0.56 {
		t.Fatalf("signal fraction = %v, want ~0.53", frac)
	}
}

func TestHiggsIsLearnable(t *testing.T) {
	// m_bb (feature 25) must separate signal from background: the signal
	// mean should sit well above... the distributions differ measurably.
	d := Higgs(20000, 2)
	var sigSum, bgSum float64
	var sigN, bgN int
	for i := 0; i < d.NumRecords(); i++ {
		v := float64(d.Row(i)[25])
		if d.Y[i] == 1 {
			sigSum += v
			sigN++
		} else {
			bgSum += v
			bgN++
		}
	}
	sigMean, bgMean := sigSum/float64(sigN), bgSum/float64(bgN)
	if math.Abs(sigMean-bgMean) < 0.05 {
		t.Fatalf("m_bb means too close: signal %v background %v", sigMean, bgMean)
	}
}

func TestReplicate(t *testing.T) {
	d := Iris()
	r := d.Replicate(1000)
	if r.NumRecords() != 1000 {
		t.Fatalf("Replicate(1000) gave %d records", r.NumRecords())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rows cycle through the source.
	for i := 0; i < 1000; i++ {
		src := d.Row(i % 150)
		got := r.Row(i)
		for j := range src {
			if got[j] != src[j] {
				t.Fatalf("replicated row %d differs from source row %d", i, i%150)
			}
		}
		if r.Y[i] != d.Y[i%150] {
			t.Fatalf("replicated label %d differs", i)
		}
	}
}

func TestReplicateSmallerThanSource(t *testing.T) {
	r := Iris().Replicate(10)
	if r.NumRecords() != 10 {
		t.Fatalf("Replicate(10) gave %d records", r.NumRecords())
	}
}

func TestHead(t *testing.T) {
	d := Iris()
	h := d.Head(7)
	if h.NumRecords() != 7 || len(h.Y) != 7 {
		t.Fatalf("Head(7) = %d records, %d labels", h.NumRecords(), len(h.Y))
	}
	// Clamps to the dataset size.
	if d.Head(1000).NumRecords() != 150 {
		t.Fatal("Head beyond size should clamp")
	}
}

func TestSplit(t *testing.T) {
	d := Iris()
	train, test := d.Split(0.2, xrand.New(1))
	if train.NumRecords()+test.NumRecords() != 150 {
		t.Fatalf("split sizes %d+%d != 150", train.NumRecords(), test.NumRecords())
	}
	if test.NumRecords() != 30 {
		t.Fatalf("test size = %d, want 30", test.NumRecords())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := Iris()
	a, _ := d.Split(0.3, xrand.New(5))
	b, _ := d.Split(0.3, xrand.New(5))
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSizeBytes(t *testing.T) {
	d := Iris()
	if got := d.SizeBytes(); got != 150*4*4 {
		t.Fatalf("SizeBytes = %d, want 2400", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := Iris()
	d.X = d.X[:len(d.X)-1]
	if d.Validate() == nil {
		t.Fatal("truncated X not caught")
	}
	d = Iris()
	d.Y[0] = 99
	if d.Validate() == nil {
		t.Fatal("out-of-range label not caught")
	}
	d = Iris()
	d.Y = d.Y[:10]
	if d.Validate() == nil {
		t.Fatal("label-count mismatch not caught")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Iris()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "IRIS")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 150 || got.NumFeatures() != 4 || got.NumClasses() != 3 {
		t.Fatalf("round-trip shape %dx%d classes=%d", got.NumRecords(), got.NumFeatures(), got.NumClasses())
	}
	for i := range d.X {
		if d.X[i] != got.X[i] {
			t.Fatalf("round-trip value %d: %v != %v", i, d.X[i], got.X[i])
		}
	}
	for i := range d.Y {
		if d.Y[i] != got.Y[i] {
			t.Fatalf("round-trip label %d: %v != %v", i, d.Y[i], got.Y[i])
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		d := Higgs(n, uint64(seed))
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, "HIGGS")
		if err != nil {
			return false
		}
		if got.NumRecords() != n {
			return false
		}
		for i := range d.X {
			if d.X[i] != got.X[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString(""), "x"); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b,label\n1,notanumber,c\n"), "x"); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("label\nc\n"), "x"); err == nil {
		t.Fatal("CSV with no features accepted")
	}
}

func BenchmarkHiggsGenerate10K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Higgs(10000, uint64(i))
	}
}

func BenchmarkReplicateTo100K(b *testing.B) {
	d := Iris()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Replicate(100_000)
	}
}
