package dataset

import (
	"math"
	"testing"

	"accelscore/internal/xrand"
)

func TestStatsIris(t *testing.T) {
	d := Iris()
	stats := d.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats length %d", len(stats))
	}
	// Canonical IRIS sepal_length range is [4.3, 7.9], mean ~5.843.
	sl := stats[0]
	if sl.Name != "sepal_length" || sl.Min != 4.3 || sl.Max != 7.9 {
		t.Fatalf("sepal_length stats = %+v", sl)
	}
	if math.Abs(sl.Mean-5.843) > 0.01 {
		t.Fatalf("sepal_length mean = %v", sl.Mean)
	}
	if sl.StdDev < 0.5 || sl.StdDev > 1.1 {
		t.Fatalf("sepal_length stddev = %v", sl.StdDev)
	}
}

func TestStatsEmpty(t *testing.T) {
	d := &Dataset{Name: "e", FeatureNames: []string{"a"}}
	stats := d.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestStandardize(t *testing.T) {
	d := Iris()
	std, stats := d.Standardize()
	if len(stats) != 4 {
		t.Fatal("missing stats")
	}
	// Each standardized column has ~zero mean and ~unit stddev.
	for j, s := range std.Stats() {
		if math.Abs(s.Mean) > 1e-5 {
			t.Fatalf("column %d mean = %v after standardize", j, s.Mean)
		}
		if math.Abs(s.StdDev-1) > 1e-4 {
			t.Fatalf("column %d stddev = %v after standardize", j, s.StdDev)
		}
	}
	// Original untouched; labels carried over.
	if d.X[0] != 5.1 || std.Y[0] != d.Y[0] {
		t.Fatal("Standardize mutated source or dropped labels")
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	d := &Dataset{
		Name:         "const",
		FeatureNames: []string{"k"},
		ClassNames:   []string{"a"},
		X:            []float32{5, 5, 5},
		Y:            []int{0, 0, 0},
	}
	std, _ := d.Standardize()
	for _, v := range std.X {
		if v != 0 {
			t.Fatalf("constant column standardized to %v, want 0", v)
		}
	}
}

func TestStratifiedSplit(t *testing.T) {
	d := Iris()
	train, test, err := d.StratifiedSplit(0.2, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if train.NumRecords()+test.NumRecords() != 150 {
		t.Fatalf("split sizes %d+%d", train.NumRecords(), test.NumRecords())
	}
	// Every class keeps its proportion exactly (50 -> 10 test each).
	for c, n := range test.ClassCounts() {
		if n != 10 {
			t.Fatalf("class %d test count = %d, want 10", c, n)
		}
	}
	for c, n := range train.ClassCounts() {
		if n != 40 {
			t.Fatalf("class %d train count = %d, want 40", c, n)
		}
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	d := Iris()
	if _, _, err := d.StratifiedSplit(0, xrand.New(1)); err == nil {
		t.Fatal("testFrac=0 accepted")
	}
	if _, _, err := d.StratifiedSplit(1, xrand.New(1)); err == nil {
		t.Fatal("testFrac=1 accepted")
	}
	unlabeled := Iris()
	unlabeled.Y = nil
	if _, _, err := unlabeled.StratifiedSplit(0.2, xrand.New(1)); err == nil {
		t.Fatal("unlabeled accepted")
	}
}

func TestStratifiedSplitTinyClass(t *testing.T) {
	// A class with 2 members still lands one row in test.
	d := &Dataset{
		Name:         "tiny",
		FeatureNames: []string{"x"},
		ClassNames:   []string{"a", "b"},
		X:            []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Y:            []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1},
	}
	_, test, err := d.StratifiedSplit(0.2, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if test.ClassCounts()[1] != 1 {
		t.Fatalf("tiny class test count = %d, want 1", test.ClassCounts()[1])
	}
}
