package dataset_test

import (
	"testing"

	"accelscore/internal/dataset"
)

func TestConcat(t *testing.T) {
	iris := dataset.Iris()
	a, b, c := iris.Head(10), iris.Head(25), iris.Head(3)
	merged, err := dataset.Concat([]*dataset.Dataset{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRecords() != 38 {
		t.Fatalf("merged has %d records, want 38", merged.NumRecords())
	}
	if merged.NumFeatures() != iris.NumFeatures() {
		t.Fatalf("merged has %d features", merged.NumFeatures())
	}
	// Row order is part-by-part: row 10 of the merge is row 0 of b.
	for j, v := range b.Row(0) {
		if merged.Row(10)[j] != v {
			t.Fatalf("row 10 feature %d = %v, want %v", j, merged.Row(10)[j], v)
		}
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	// Single-part concat copies the rows through unchanged.
	one, err := dataset.Concat([]*dataset.Dataset{a})
	if err != nil || one.NumRecords() != 10 {
		t.Fatalf("single concat: %v records=%d", err, one.NumRecords())
	}
}

func TestConcatErrors(t *testing.T) {
	if _, err := dataset.Concat(nil); err == nil {
		t.Fatal("empty concat did not fail")
	}
	iris := dataset.Iris()
	other := &dataset.Dataset{Name: "narrow", FeatureNames: []string{"a", "b"}, X: []float32{1, 2}}
	if _, err := dataset.Concat([]*dataset.Dataset{iris.Head(5), other}); err == nil {
		t.Fatal("feature-mismatch concat did not fail")
	}
}
