// Package sim provides the latency-accounting substrate shared by every
// simulated backend.
//
// The paper decomposes an offloaded scoring operation into named components
// (Fig. 6 and §IV-B): host offload overhead O, data-transfer overhead L, and
// accelerator compute C_A, further split into input transfer, FPGA setup,
// scoring, completion signal, result transfer and software overhead
// (Fig. 7). A Timeline is an ordered list of named spans with component
// kinds, plus composition rules for sequential and overlapped execution so
// the FPGA backend can model its record-stream/compute overlap.
//
// Durations are simulated time, not wall-clock: they come from the
// calibrated hardware models in internal/hw, which makes every experiment
// deterministic and machine-independent.
package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind classifies a span according to the paper's O/L/C taxonomy (Fig. 6).
type Kind int

const (
	// KindOverhead is host offload overhead: accelerator setup, completion
	// signaling, software call overhead ("O" in Fig. 6).
	KindOverhead Kind = iota
	// KindTransfer is data movement between host and accelerator ("L").
	KindTransfer
	// KindCompute is time spent actually scoring ("C_H" or "C_A").
	KindCompute
	// KindPipeline is an analytics-pipeline stage outside the scoring
	// operation itself (Python invocation, DBMS<->process copies,
	// pre/post-processing) — the "application tax" of §IV-D.
	KindPipeline
)

// String returns the short label used in breakdown tables.
func (k Kind) String() string {
	switch k {
	case KindOverhead:
		return "overhead"
	case KindTransfer:
		return "transfer"
	case KindCompute:
		return "compute"
	case KindPipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Span is one named component of a simulated operation.
type Span struct {
	Name     string
	Kind     Kind
	Duration time.Duration
}

// Timeline is an ordered collection of spans. The zero value is an empty
// timeline ready to use.
type Timeline struct {
	spans []Span
}

// Add appends a span. Negative durations are clamped to zero so cost models
// can subtract overlapped portions without going negative.
func (t *Timeline) Add(name string, kind Kind, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.spans = append(t.spans, Span{Name: name, Kind: kind, Duration: d})
}

// AddSpan appends a prebuilt span.
func (t *Timeline) AddSpan(s Span) {
	if s.Duration < 0 {
		s.Duration = 0
	}
	t.spans = append(t.spans, s)
}

// Extend appends all spans of other, in order.
func (t *Timeline) Extend(other *Timeline) {
	if other == nil {
		return
	}
	t.spans = append(t.spans, other.spans...)
}

// Spans returns a copy of the spans in insertion order.
func (t *Timeline) Spans() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Total returns the sum of all span durations (purely sequential
// interpretation).
func (t *Timeline) Total() time.Duration {
	var sum time.Duration
	for _, s := range t.spans {
		sum += s.Duration
	}
	return sum
}

// TotalKind returns the summed duration of spans with the given kind.
func (t *Timeline) TotalKind(k Kind) time.Duration {
	var sum time.Duration
	for _, s := range t.spans {
		if s.Kind == k {
			sum += s.Duration
		}
	}
	return sum
}

// Component returns the summed duration of spans with the given name.
func (t *Timeline) Component(name string) time.Duration {
	var sum time.Duration
	for _, s := range t.spans {
		if s.Name == name {
			sum += s.Duration
		}
	}
	return sum
}

// ComponentNames returns the distinct span names in first-appearance order.
func (t *Timeline) ComponentNames() []string {
	seen := make(map[string]bool, len(t.spans))
	var names []string
	for _, s := range t.spans {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	return names
}

// Overlapped records two phases that run concurrently (e.g. the FPGA's
// record streaming overlapping with scoring, §IV-B item 1). The longer phase
// is charged in full; the shorter appears with zero incremental cost but is
// retained, annotated, for breakdown display.
func (t *Timeline) Overlapped(a, b Span) {
	longer, shorter := a, b
	if b.Duration > a.Duration {
		longer, shorter = b, a
	}
	t.AddSpan(longer)
	t.AddSpan(Span{
		Name:     shorter.Name + " (overlapped)",
		Kind:     shorter.Kind,
		Duration: 0,
	})
}

// Breakdown is an aggregated view of a timeline: one row per component name.
type Breakdown struct {
	Rows  []Span
	Total time.Duration
}

// Aggregate collapses spans with identical names into one row each,
// preserving first-appearance order, and computes the total.
func (t *Timeline) Aggregate() Breakdown {
	index := make(map[string]int)
	var rows []Span
	for _, s := range t.spans {
		if i, ok := index[s.Name]; ok {
			rows[i].Duration += s.Duration
			continue
		}
		index[s.Name] = len(rows)
		rows = append(rows, s)
	}
	return Breakdown{Rows: rows, Total: t.Total()}
}

// String renders an aligned textual breakdown, largest components first,
// with percentages — the format used by cmd/repro for Fig. 7 and Fig. 11.
func (b Breakdown) String() string {
	rows := make([]Span, len(b.Rows))
	copy(rows, b.Rows)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Duration > rows[j].Duration })
	var sb strings.Builder
	width := 0
	for _, r := range rows {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	for _, r := range rows {
		pct := 0.0
		if b.Total > 0 {
			pct = 100 * float64(r.Duration) / float64(b.Total)
		}
		fmt.Fprintf(&sb, "%-*s  %12s  %5.1f%%  [%s]\n", width, r.Name, FormatDuration(r.Duration), pct, r.Kind)
	}
	fmt.Fprintf(&sb, "%-*s  %12s\n", width, "TOTAL", FormatDuration(b.Total))
	return sb.String()
}

// FormatDuration renders a duration with units matched to its magnitude
// (ns/µs/ms/s), mirroring how the paper reports component times that span
// six orders of magnitude.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Seconds is a convenience conversion used by throughput computations.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// Throughput returns operations per second for n operations completed in d.
// It returns 0 for non-positive durations.
func Throughput(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// timelineJSON is the serialized form of a Timeline.
type timelineJSON struct {
	Spans []spanJSON `json:"spans"`
	Total int64      `json:"total_ns"`
}

type spanJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	NS   int64  `json:"duration_ns"`
}

// MarshalJSON serializes the timeline for external tooling: each span with
// its kind label and nanosecond duration, plus the total.
func (t *Timeline) MarshalJSON() ([]byte, error) {
	out := timelineJSON{Total: t.Total().Nanoseconds()}
	for _, s := range t.spans {
		out.Spans = append(out.Spans, spanJSON{Name: s.Name, Kind: s.Kind.String(), NS: s.Duration.Nanoseconds()})
	}
	return json.Marshal(out)
}
