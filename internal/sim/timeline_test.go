package sim

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindOverhead: "overhead",
		KindTransfer: "transfer",
		KindCompute:  "compute",
		KindPipeline: "pipeline",
		Kind(99):     "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestAddAndTotal(t *testing.T) {
	var tl Timeline
	tl.Add("setup", KindOverhead, 5*time.Microsecond)
	tl.Add("score", KindCompute, 4*time.Millisecond)
	tl.Add("result", KindTransfer, 300*time.Microsecond)
	if got := tl.Total(); got != 5*time.Microsecond+4*time.Millisecond+300*time.Microsecond {
		t.Fatalf("Total = %v", got)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	var tl Timeline
	tl.Add("neg", KindCompute, -time.Second)
	tl.AddSpan(Span{Name: "neg2", Kind: KindCompute, Duration: -1})
	if tl.Total() != 0 {
		t.Fatalf("negative durations not clamped: %v", tl.Total())
	}
}

func TestTotalKind(t *testing.T) {
	var tl Timeline
	tl.Add("setup", KindOverhead, time.Microsecond)
	tl.Add("interrupt", KindOverhead, 2*time.Microsecond)
	tl.Add("score", KindCompute, time.Millisecond)
	if got := tl.TotalKind(KindOverhead); got != 3*time.Microsecond {
		t.Fatalf("TotalKind(overhead) = %v", got)
	}
	if got := tl.TotalKind(KindPipeline); got != 0 {
		t.Fatalf("TotalKind(pipeline) = %v, want 0", got)
	}
}

func TestComponentAggregation(t *testing.T) {
	var tl Timeline
	tl.Add("model transfer", KindTransfer, time.Millisecond)
	tl.Add("score", KindCompute, time.Millisecond)
	tl.Add("model transfer", KindTransfer, 2*time.Millisecond)
	if got := tl.Component("model transfer"); got != 3*time.Millisecond {
		t.Fatalf("Component = %v", got)
	}
	agg := tl.Aggregate()
	if len(agg.Rows) != 2 {
		t.Fatalf("Aggregate rows = %d, want 2", len(agg.Rows))
	}
	if agg.Rows[0].Name != "model transfer" || agg.Rows[0].Duration != 3*time.Millisecond {
		t.Fatalf("aggregated row wrong: %+v", agg.Rows[0])
	}
	if agg.Total != tl.Total() {
		t.Fatalf("aggregate total %v != timeline total %v", agg.Total, tl.Total())
	}
}

func TestComponentNamesOrder(t *testing.T) {
	var tl Timeline
	tl.Add("b", KindCompute, 1)
	tl.Add("a", KindCompute, 1)
	tl.Add("b", KindCompute, 1)
	names := tl.ComponentNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("ComponentNames = %v", names)
	}
}

func TestExtend(t *testing.T) {
	var a, b Timeline
	a.Add("x", KindCompute, time.Second)
	b.Add("y", KindTransfer, time.Second)
	a.Extend(&b)
	a.Extend(nil)
	if len(a.Spans()) != 2 || a.Total() != 2*time.Second {
		t.Fatalf("Extend failed: %v", a.Spans())
	}
}

func TestOverlappedChargesLonger(t *testing.T) {
	var tl Timeline
	tl.Overlapped(
		Span{Name: "record stream", Kind: KindTransfer, Duration: 9 * time.Millisecond},
		Span{Name: "scoring", Kind: KindCompute, Duration: 4 * time.Millisecond},
	)
	if got := tl.Total(); got != 9*time.Millisecond {
		t.Fatalf("overlapped total = %v, want 9ms", got)
	}
	if got := tl.Component("scoring (overlapped)"); got != 0 {
		t.Fatalf("shorter overlapped span should cost 0, got %v", got)
	}
	// Order-independent: swapping arguments gives the same total.
	var tl2 Timeline
	tl2.Overlapped(
		Span{Name: "scoring", Kind: KindCompute, Duration: 4 * time.Millisecond},
		Span{Name: "record stream", Kind: KindTransfer, Duration: 9 * time.Millisecond},
	)
	if tl2.Total() != tl.Total() {
		t.Fatalf("Overlapped not symmetric: %v vs %v", tl2.Total(), tl.Total())
	}
}

func TestSpansIsCopy(t *testing.T) {
	var tl Timeline
	tl.Add("x", KindCompute, time.Second)
	s := tl.Spans()
	s[0].Duration = 0
	if tl.Total() != time.Second {
		t.Fatal("Spans returned aliased storage")
	}
}

func TestBreakdownString(t *testing.T) {
	var tl Timeline
	tl.Add("scoring", KindCompute, 40*time.Millisecond)
	tl.Add("setup", KindOverhead, 5*time.Microsecond)
	out := tl.Aggregate().String()
	if !strings.Contains(out, "scoring") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("breakdown missing rows:\n%s", out)
	}
	// Largest component first.
	if strings.Index(out, "scoring") > strings.Index(out, "setup") {
		t.Fatalf("breakdown not sorted by duration:\n%s", out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		250 * time.Nanosecond:   "250ns",
		42 * time.Microsecond:   "42.00µs",
		7500 * time.Microsecond: "7.500ms",
		2 * time.Second:         "2.000s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(5, 0); got != 0 {
		t.Fatalf("Throughput with zero duration = %v, want 0", got)
	}
	if got := Throughput(1_000_000, 40*time.Millisecond); got != 25_000_000 {
		t.Fatalf("Throughput = %v, want 25M", got)
	}
}

// Property: total equals the sum of per-kind totals for any span set.
func TestTotalPartitionsByKind(t *testing.T) {
	f := func(durs []uint32) bool {
		var tl Timeline
		for i, d := range durs {
			tl.Add("s", Kind(i%4), time.Duration(d))
		}
		var sum time.Duration
		for k := KindOverhead; k <= KindPipeline; k++ {
			sum += tl.TotalKind(k)
		}
		return sum == tl.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalJSON(t *testing.T) {
	var tl Timeline
	tl.Add("scoring", KindCompute, 40*time.Millisecond)
	tl.Add("setup", KindOverhead, 3*time.Microsecond)
	b, err := json.Marshal(&tl)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Spans []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
			NS   int64  `json:"duration_ns"`
		} `json:"spans"`
		Total int64 `json:"total_ns"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Spans) != 2 || decoded.Total != tl.Total().Nanoseconds() {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Spans[0].Name != "scoring" || decoded.Spans[0].Kind != "compute" {
		t.Fatalf("span 0 = %+v", decoded.Spans[0])
	}
}
