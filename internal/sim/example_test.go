package sim_test

import (
	"fmt"
	"time"

	"accelscore/internal/sim"
)

// ExampleTimeline shows composing an offload operation's components in the
// paper's O/L/C taxonomy and aggregating them.
func ExampleTimeline() {
	var tl sim.Timeline
	tl.Add("FPGA setup", sim.KindOverhead, 3*time.Microsecond)
	tl.Add("scoring", sim.KindCompute, 40*time.Millisecond)
	tl.Add("result transfer", sim.KindTransfer, 500*time.Microsecond)

	fmt.Println("total:", tl.Total())
	fmt.Println("O:", tl.TotalKind(sim.KindOverhead))
	fmt.Println("L:", tl.TotalKind(sim.KindTransfer))
	fmt.Println("C:", tl.TotalKind(sim.KindCompute))
	// Output:
	// total: 40.503ms
	// O: 3µs
	// L: 500µs
	// C: 40ms
}

// ExampleTimeline_Overlapped shows the record-stream/compute overlap the
// FPGA backend models: only the longer phase is charged.
func ExampleTimeline_Overlapped() {
	var tl sim.Timeline
	tl.Overlapped(
		sim.Span{Name: "scoring", Kind: sim.KindCompute, Duration: 40 * time.Millisecond},
		sim.Span{Name: "record stream", Kind: sim.KindTransfer, Duration: 9 * time.Millisecond},
	)
	fmt.Println(tl.Total())
	// Output:
	// 40ms
}
