package pipeline_test

import (
	"fmt"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/pipeline"
)

// newFusionPipeline is newPipeline plus a wide variant of the iris table:
// the four feature columns, then junk REAL columns, then the label column,
// so projection pruning and non-feature predicates both have something to
// chew on.
func newFusionPipeline(t testing.TB, rows int) (*pipeline.Pipeline, *forest.Forest, *dataset.Dataset) {
	t.Helper()
	p, f, data := newPipeline(t, 8, 10, rows)
	wide, err := db.NewTable("iris_wide", append(
		func() []db.Column {
			var cols []db.Column
			for _, name := range data.FeatureNames {
				cols = append(cols, db.Column{Name: name, Type: db.Float32Col})
			}
			return cols
		}(),
		db.Column{Name: "junk_a", Type: db.Float32Col},
		db.Column{Name: "junk_b", Type: db.Float32Col},
		db.Column{Name: "label", Type: db.Int64Col},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.NumRecords(); i++ {
		row := make([]db.Value, 0, data.NumFeatures()+3)
		for _, v := range data.Row(i) {
			row = append(row, db.Float(v))
		}
		row = append(row, db.Float(float32(i)), db.Float(float32(-i)), db.Int(int64(data.Y[i])))
		if err := wide.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DB.CreateTable(wide); err != nil {
		t.Fatal(err)
	}
	return p, f, data
}

// postFiltered computes the reference result: score every row, then filter.
func postFiltered(f *forest.Forest, data *dataset.Dataset, keep func(i int) bool) []int {
	var out []int
	for i := 0; i < data.NumRecords(); i++ {
		if keep(i) {
			out = append(out, f.PredictClass(data.Row(i)))
		}
	}
	return out
}

func TestFusedWhereMatchesPostFilter(t *testing.T) {
	p, f, data := newFusionPipeline(t, 300)
	featIdx := 3 // petal_width
	want := postFiltered(f, data, func(i int) bool {
		return float64(data.Row(i)[featIdx]) < 1.5
	})
	// GPU_RAPIDS is binary-only and is exercised by the conformance suite.
	for _, be := range []string{"CPU_SKLearn", "CPU_ONNX", "GPU_HB", "FPGA"} {
		q := fmt.Sprintf("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='%s', @where='%s < 1.5'",
			be, data.FeatureNames[featIdx])
		res, err := p.ExecQuery(q)
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		if !res.Fused {
			t.Fatalf("%s: result not marked fused", be)
		}
		if res.RowsScanned != data.NumRecords() || res.RowsScored != len(want) {
			t.Fatalf("%s: scanned=%d scored=%d, want %d/%d",
				be, res.RowsScanned, res.RowsScored, data.NumRecords(), len(want))
		}
		if len(res.Predictions) != len(want) {
			t.Fatalf("%s: %d predictions, want %d", be, len(res.Predictions), len(want))
		}
		for i := range want {
			if res.Predictions[i] != want[i] {
				t.Fatalf("%s: prediction %d differs from score-then-filter", be, i)
			}
		}
		if res.Table.NumRows() != len(want) {
			t.Fatalf("%s: table rows = %d", be, res.Table.NumRows())
		}
	}
}

func TestFusedWhereOnNonFeatureColumn(t *testing.T) {
	p, f, data := newFusionPipeline(t, 300)
	// label and junk_a are not model features: the predicate column is
	// gathered separately and pushed down alongside.
	res, err := p.ExecQuery(
		"EXEC sp_score_model @model='iris_rf', @data='iris_wide', @backend='CPU_SKLearn', @where='label = 2 AND junk_a < 200'")
	if err != nil {
		t.Fatal(err)
	}
	want := postFiltered(f, data, func(i int) bool { return data.Y[i] == 2 && float64(i) < 200 })
	if len(res.Predictions) != len(want) {
		t.Fatalf("%d predictions, want %d", len(res.Predictions), len(want))
	}
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("prediction %d differs", i)
		}
	}
}

func TestFusedEmptyResult(t *testing.T) {
	p, _, _ := newFusionPipeline(t, 128)
	res, err := p.ExecQuery(
		"EXEC sp_score_model @model='iris_rf', @data='iris', @backend='FPGA', @where='sepal_length < -1'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 0 || res.Table.NumRows() != 0 || res.RowsScored != 0 {
		t.Fatalf("empty predicate returned %d rows", res.Table.NumRows())
	}
}

func TestFusedLimitBoundsScan(t *testing.T) {
	p, f, data := newFusionPipeline(t, 500)
	res, err := p.ExecQuery(
		"EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn', @limit=100, @where='petal_width < 1.5'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 100 {
		t.Fatalf("scanned %d rows, @limit=100 must bound the scan", res.RowsScanned)
	}
	want := postFiltered(f, data.Head(100), func(i int) bool {
		return float64(data.Row(i)[3]) < 1.5
	})
	if len(res.Predictions) != len(want) {
		t.Fatalf("%d predictions, want %d", len(res.Predictions), len(want))
	}
}

func TestPredictStatementShapes(t *testing.T) {
	p, f, data := newFusionPipeline(t, 300)

	// Plain projection: the prediction column.
	res, err := p.ExecQuery(
		"SELECT prediction FROM PREDICT(@model='iris_rf', @data='iris', @backend='FPGA') WHERE petal_width >= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := postFiltered(f, data, func(i int) bool { return float64(data.Row(i)[3]) >= 1.5 })
	if len(res.Predictions) != len(want) {
		t.Fatalf("predict stmt: %d predictions, want %d", len(res.Predictions), len(want))
	}

	// COUNT(*) never materializes predictions.
	res, err = p.ExecQuery(
		"SELECT COUNT(*) FROM PREDICT(@model='iris_rf', @data='iris', @backend='CPU_SKLearn') WHERE petal_width >= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictions != nil {
		t.Fatal("fused COUNT(*) materialized predictions")
	}
	if got := res.Table.Cell(0, 0).I; got != int64(len(want)) {
		t.Fatalf("COUNT(*) = %d, want %d", got, len(want))
	}

	// GROUP BY prediction equals aggregating the materialized predictions.
	res, err = p.ExecQuery(
		"SELECT prediction, COUNT(*) FROM PREDICT(@model='iris_rf', @data='iris', @backend='CPU_SKLearn') GROUP BY prediction")
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := map[int64]int64{}
	for i := 0; i < data.NumRecords(); i++ {
		wantCounts[int64(f.PredictClass(data.Row(i)))]++
	}
	if res.Table.NumRows() != len(wantCounts) {
		t.Fatalf("GROUP BY rows = %d, want %d", res.Table.NumRows(), len(wantCounts))
	}
	prev := int64(-1)
	for r := 0; r < res.Table.NumRows(); r++ {
		class, count := res.Table.Cell(r, 0).I, res.Table.Cell(r, 1).I
		if class <= prev {
			t.Fatalf("GROUP BY classes not ascending at row %d", r)
		}
		prev = class
		if wantCounts[class] != count {
			t.Fatalf("class %d count = %d, want %d", class, count, wantCounts[class])
		}
	}
}

// Fused aggregation must agree between engines that compute counts in the
// kernel (CPU engines, WantCounts) and engines that fall back to counting
// materialized predictions.
func TestFusedAggregateConsistentAcrossEngines(t *testing.T) {
	p, _, _ := newFusionPipeline(t, 257)
	var ref map[int64]int64
	for _, be := range []string{"CPU_SKLearn", "CPU_ONNX", "GPU_HB", "FPGA"} {
		q := fmt.Sprintf(
			"SELECT prediction, COUNT(*) FROM PREDICT(@model='iris_rf', @data='iris', @backend='%s') WHERE sepal_length > 5 GROUP BY prediction", be)
		res, err := p.ExecQuery(q)
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		got := map[int64]int64{}
		for r := 0; r < res.Table.NumRows(); r++ {
			got[res.Table.Cell(r, 0).I] = res.Table.Cell(r, 1).I
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d classes, ref has %d", be, len(got), len(ref))
		}
		for class, count := range ref {
			if got[class] != count {
				t.Fatalf("%s: class %d count %d != ref %d", be, class, got[class], count)
			}
		}
	}
}

func TestFusedBatchKeyValidation(t *testing.T) {
	p, _, _ := newFusionPipeline(t, 100)
	where, err := db.ParseConditionList("petal_width < 1.5")
	if err != nil {
		t.Fatal(err)
	}
	a := &pipeline.ScoreRequest{Model: "iris_rf", Data: "iris", Backend: "CPU_SKLearn", Where: where}
	b := &pipeline.ScoreRequest{Model: "iris_rf", Data: "iris", Backend: "CPU_SKLearn"}
	if _, err := p.ExecScoreBatch([]*pipeline.ScoreRequest{a, b}); err == nil {
		t.Fatal("batch mixing fused shapes must fail")
	}
	// Same fusion key coalesces fine and fans out per request.
	c := &pipeline.ScoreRequest{Model: "iris_rf", Data: "iris_wide", Backend: "CPU_SKLearn", Where: where}
	results, err := p.ExecScoreBatch([]*pipeline.ScoreRequest{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[0].Predictions) != len(results[1].Predictions) {
		t.Fatalf("coalesced fused batch fan-out wrong: %d vs %d",
			len(results[0].Predictions), len(results[1].Predictions))
	}
}

func TestParsePredictStmtValidation(t *testing.T) {
	for _, bad := range []string{
		"SELECT species FROM PREDICT(@model='m', @data='t')",
		"SELECT prediction FROM PREDICT(@model='m', @data='t') WHERE species = 'setosa'",
		"SELECT prediction, COUNT(*) FROM PREDICT(@model='m', @data='t') GROUP BY species",
		"SELECT prediction FROM PREDICT(@model='m', @data='t', @where='x < 1')",
	} {
		st, err := db.Parse(bad)
		if err != nil {
			continue // parser-level rejection is fine too
		}
		if _, err := pipeline.ParsePredictStmt(st.(*db.PredictStmt)); err == nil {
			t.Fatalf("expected validation error for %s", bad)
		}
	}
}

func TestProjectionPrunedSnapshotScoresIdentically(t *testing.T) {
	p, f, data := newFusionPipeline(t, 300)
	// iris_wide has junk columns; the model's 4 features must still land on
	// the right columns via name-based projection.
	res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris_wide', @backend='CPU_SKLearn'")
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	if len(res.Predictions) != len(want) {
		t.Fatalf("%d predictions", len(res.Predictions))
	}
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("prediction %d differs on the wide table", i)
		}
	}
}

func TestFusedWithCacheEnabled(t *testing.T) {
	p, f, data := newFusionPipeline(t, 300)
	p.Cache = pipeline.NewModelCache(4)
	want := postFiltered(f, data, func(i int) bool { return float64(data.Row(i)[3]) < 1.5 })
	for round := 0; round < 2; round++ {
		res, err := p.ExecQuery(
			"EXEC sp_score_model @model='iris_rf', @data='iris_wide', @backend='CPU_SKLearn', @where='petal_width < 1.5'")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Predictions) != len(want) {
			t.Fatalf("round %d: %d predictions, want %d", round, len(res.Predictions), len(want))
		}
		for i := range want {
			if res.Predictions[i] != want[i] {
				t.Fatalf("round %d: prediction %d differs", round, i)
			}
		}
		if round == 1 && !res.CacheHit {
			t.Fatal("second fused query missed the model cache")
		}
	}
}

func TestTimeoutParamStillWorks(t *testing.T) {
	p, _, _ := newFusionPipeline(t, 100)
	res, err := p.ExecQuery(
		"SELECT COUNT(*) FROM PREDICT(@model='iris_rf', @data='iris', @backend='CPU_SKLearn', @timeout='5s')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Cell(0, 0).I != 100 {
		t.Fatalf("COUNT(*) = %d", res.Table.Cell(0, 0).I)
	}
}
