package pipeline_test

import (
	"strings"
	"testing"

	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
)

// attribStages is the canonical attribution order every scored query reports.
var attribStages = []string{
	pipeline.StageTransferIn,
	pipeline.StageModelPreproc,
	pipeline.StageModelScoring,
	pipeline.StagePostprocessing,
	pipeline.StageTransferOut,
}

// TestAttributionOnSeededQuery is the acceptance check: with attribution on,
// a seeded query reports per-stage CPU/alloc/bytes-moved costs on the
// result, on the retained trace, and in the stage metrics.
func TestAttributionOnSeededQuery(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 8, 200)
	o := obs.NewObserver()
	o.Attribution = true
	p.Obs = o

	res, err := p.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attribution) != len(attribStages) {
		t.Fatalf("attribution has %d stages, want %d: %+v", len(res.Attribution), len(attribStages), res.Attribution)
	}
	for i, want := range attribStages {
		if res.Attribution[i].Stage != want {
			t.Errorf("stage %d = %q, want %q", i, res.Attribution[i].Stage, want)
		}
	}
	if res.Attribution[0].BytesMoved <= 0 || res.Attribution[4].BytesMoved <= 0 {
		t.Errorf("transfer legs report no bytes: in=%d out=%d",
			res.Attribution[0].BytesMoved, res.Attribution[4].BytesMoved)
	}
	// Scoring allocates (the output buffer at minimum), and totals add up.
	if res.Attribution[2].AllocBytes <= 0 {
		t.Errorf("scoring stage reports no allocation: %+v", res.Attribution[2])
	}
	tot := res.Attribution.Total()
	if tot.BytesMoved != res.Attribution[0].BytesMoved+res.Attribution[4].BytesMoved {
		t.Errorf("total bytes moved %d != sum of legs", tot.BytesMoved)
	}

	// The trace carries the same costs and they surface as Chrome args.
	tr, ok := o.Tracer.Get(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", res.TraceID)
	}
	snap := tr.Snapshot()
	if len(snap.Costs) != len(attribStages) {
		t.Fatalf("trace costs = %+v", snap.Costs)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cpu_us"`, `"alloc_bytes"`, `"alloc_objects"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("chrome export missing %s arg", want)
		}
	}

	// Stage metrics: per-stage CPU histograms, alloc counters, transfer
	// counters in both directions.
	var expo strings.Builder
	if err := o.Registry.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	text := expo.String()
	for _, needle := range []string{
		pipeline.MetricStageCPUSeconds + `_count{stage="model scoring"} 1`,
		pipeline.MetricStageAllocBytesTotal + `{stage="model scoring"}`,
		pipeline.MetricTransferBytesTotal + `{direction="in"}`,
		pipeline.MetricTransferBytesTotal + `{direction="out"}`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("exposition missing %q", needle)
		}
	}
}

// TestAttributionOffLeavesResultClean: attribution is opt-in — a default
// observer and an unobserved pipeline both skip the cost sampling entirely.
func TestAttributionOffLeavesResultClean(t *testing.T) {
	p, _, _ := newPipeline(t, 4, 6, 100)
	p.Obs = obs.NewObserver() // Attribution defaults to false
	res, err := p.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attribution != nil {
		t.Fatalf("attribution recorded without opt-in: %+v", res.Attribution)
	}

	p2, _, _ := newPipeline(t, 4, 6, 100)
	res2, err := p2.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Attribution != nil {
		t.Fatalf("unobserved pipeline recorded attribution: %+v", res2.Attribution)
	}
}

// TestAttributionPredictionsBitIdentical is the conformance criterion:
// enabling attribution must never change a prediction.
func TestAttributionPredictionsBitIdentical(t *testing.T) {
	pOn, _, _ := newPipeline(t, 16, 10, 300)
	o := obs.NewObserver()
	o.Attribution = true
	pOn.Obs = o
	pOff, _, _ := newPipeline(t, 16, 10, 300)

	on, err := pOn.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	off, err := pOff.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Predictions) != len(off.Predictions) || len(on.Predictions) == 0 {
		t.Fatalf("prediction counts: %d vs %d", len(on.Predictions), len(off.Predictions))
	}
	for i := range on.Predictions {
		if on.Predictions[i] != off.Predictions[i] {
			t.Fatalf("prediction %d: %d with attribution, %d without", i, on.Predictions[i], off.Predictions[i])
		}
	}
}

// TestBatchAttributionApportions checks the coalesced-batch split: fixed
// stages divide evenly across the batch, row-proportional stages scale by
// row share — mirroring the simulated-timeline amortization arithmetic.
func TestBatchAttributionApportions(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 10, 300)
	p.Cache = pipeline.NewModelCache(4)
	o := obs.NewObserver()
	o.Attribution = true
	p.Obs = o

	limits := []int{50, 100, 150}
	reqs := make([]*pipeline.ScoreRequest, len(limits))
	for i, n := range limits {
		reqs[i] = &pipeline.ScoreRequest{Model: "iris_rf", Data: "iris", Backend: "CPU_SKLearn", Limit: n}
	}
	results, err := p.ExecScoreBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var inSum int64
	for i, res := range results {
		if len(res.Attribution) != len(attribStages) {
			t.Fatalf("result %d: attribution %+v", i, res.Attribution)
		}
		// Fixed stage: every sub-query gets the same 1/n slice.
		if got, first := res.Attribution[1], results[0].Attribution[1]; got != first {
			t.Errorf("result %d: pre-processing slice %+v != %+v", i, got, first)
		}
		// Row-proportional stage: inbound bytes track the row share.
		inSum += res.Attribution[0].BytesMoved
		if i > 0 {
			ratio := float64(res.Attribution[0].BytesMoved) / float64(results[0].Attribution[0].BytesMoved)
			wantRatio := float64(limits[i]) / float64(limits[0])
			if ratio < wantRatio*0.95 || ratio > wantRatio*1.05 {
				t.Errorf("result %d: transfer-in share ratio %.3f, want ~%.2f", i, ratio, wantRatio)
			}
		}
	}
	// The shares cover the batch total (within integer truncation).
	batchIn := results[0].Attribution[0].BytesMoved * 6 // 50-row share x 6 = 300 rows
	if inSum < batchIn-int64(len(limits)) || inSum > batchIn+int64(len(limits)) {
		t.Errorf("transfer-in shares sum to %d, want ~%d", inSum, batchIn)
	}
}
