package pipeline_test

import (
	"strings"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/model"
	"accelscore/internal/pipeline"
)

// TestModelReplacedMidStreamCorruptThenValid covers the operational
// sequence of a model push going wrong between queries: a working model is
// replaced in place by a corrupt blob (the next query must fail in model
// pre-processing without poisoning the compiled-model cache), then by a
// valid retrained blob (the next query must miss, re-lower, and score with
// the new model).
func TestModelReplacedMidStreamCorruptThenValid(t *testing.T) {
	p, _, data := newCachedPipeline(t, 4, 8, 150)
	q := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"

	if _, err := p.ExecQuery(q); err != nil {
		t.Fatal(err)
	}

	// Replace with garbage: deserialization must fail loudly.
	if err := p.DB.DeleteModel("iris_rf"); err != nil {
		t.Fatal(err)
	}
	if err := p.DB.StoreModelBlob("iris_rf", []byte("not an RFX blob")); err != nil {
		t.Fatal(err)
	}
	_, err := p.ExecQuery(q)
	if err == nil {
		t.Fatal("corrupt model blob scored")
	}
	if !strings.Contains(err.Error(), "model pre-processing") {
		t.Fatalf("corrupt blob error %q does not name the failing stage", err)
	}

	// Replace with a valid, very different model: the next query must score
	// with it (no stale entry, no residue from the failed query).
	f2, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 1,
		Tree:     forest.TrainConfig{MaxDepth: 1},
		Seed:     321,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := model.Marshal(f2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DB.DeleteModel("iris_rf"); err != nil {
		t.Fatal(err)
	}
	if err := p.DB.StoreModelBlob("iris_rf", blob2); err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecQuery(q)
	if err != nil {
		t.Fatalf("valid replacement rejected: %v", err)
	}
	if res.CacheHit {
		t.Fatal("replacement blob served from cache")
	}
	want := f2.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("prediction %d not from the replacement model", i)
		}
	}
}

// TestLimitBeyondTableClamps: @limit larger than the table is a clamp, not
// an error (Head semantics), and the prediction count reflects the table.
func TestLimitBeyondTableClamps(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 80)
	res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX', @limit=10000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 80 {
		t.Fatalf("over-large @limit produced %d predictions, table has 80 rows", len(res.Predictions))
	}
}

// TestScoreProcParamErrors pins the remaining sp_score_model parameter
// error paths: numeric @data, and the type-before-value ordering for a
// negative string... i.e. @limit reported as a type problem even when the
// string would also be an invalid value.
func TestScoreProcParamErrors(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 50)
	if _, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data=7"); err == nil {
		t.Fatal("numeric @data accepted")
	}
	_, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @limit='-3'")
	if err == nil {
		t.Fatal("string @limit accepted")
	}
	if !strings.Contains(err.Error(), "must be a number") {
		t.Fatalf("string @limit '-3' reported %q, want the type error first", err)
	}
}

// TestScoringTableUnchangedByFailedQuery: a query that fails at the engine
// (RAPIDS on multi-class) must not leave a predictions table behind or
// mutate the input table.
func TestScoringTableUnchangedByFailedQuery(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 60)
	tbl, err := p.DB.Table("iris")
	if err != nil {
		t.Fatal(err)
	}
	versionBefore := tbl.Version()
	if _, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='GPU_RAPIDS'"); err == nil {
		t.Fatal("RAPIDS accepted the 3-class model")
	}
	if got := tbl.Version(); got != versionBefore {
		t.Fatalf("failed query mutated the input table (version %d -> %d)", versionBefore, got)
	}
	for _, name := range p.DB.TableNames() {
		if name == "predictions" {
			t.Fatal("failed query registered a predictions table")
		}
	}
}

// TestUncachedPipelineNeverReportsHits guards the zero-value contract:
// without a cache, CacheHit and CacheStats stay zero across repeats.
func TestUncachedPipelineNeverReportsHits(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 50)
	q := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"
	for pass := 0; pass < 2; pass++ {
		res, err := p.ExecQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit || res.CacheStats != (pipeline.CacheStats{}) {
			t.Fatalf("pass %d: cacheless pipeline reported hit=%v stats=%v", pass, res.CacheHit, res.CacheStats)
		}
	}
}
