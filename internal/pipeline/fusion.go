// Query/operator fusion: the planning half of the fused scoring path. A
// scoring query may carry a pushed-down WHERE (rows are filtered inside the
// kernel's traversal loop, before any tree is walked), a projection implied
// by the model's feature names (only those columns leave the column store),
// and a terminal aggregation (COUNT(*) / GROUP BY prediction) that never
// materializes the prediction column. This file lowers the SQL forms onto
// the kernel primitives; pipeline.go executes the plan.
package pipeline

import (
	"fmt"
	"strings"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/kernel"
	"accelscore/internal/tensor"
)

// AggMode is the fused aggregation a scoring query requests.
type AggMode int

const (
	// AggNone returns the prediction column (the classic result shape).
	AggNone AggMode = iota
	// AggCount returns a single COUNT(*) of the scored rows.
	AggCount
	// AggGroupCount returns (prediction, COUNT(*)) per predicted class.
	AggGroupCount
)

// String names the mode for metrics labels and trace attributes.
func (m AggMode) String() string {
	switch m {
	case AggCount:
		return "count"
	case AggGroupCount:
		return "group_count"
	default:
		return "none"
	}
}

// FusionKey canonicalizes the request's fused-query shape — the WHERE
// conjuncts (rendered in canonical form), the aggregation mode, and the
// hash partition. Requests are only coalescible into one backend call when,
// besides model and backend, this key matches: the pushed-down filter, the
// result shape and the scored partition are shared batch state. Distinct
// partitions of the same query must never coalesce — their selections
// differ row by row.
func (r *ScoreRequest) FusionKey() string {
	if len(r.Where) == 0 && r.Agg == AggNone && !r.Partition.Active() {
		return ""
	}
	return db.FormatConditions(r.Where) + "\x00" + r.Agg.String() + "\x00" + r.Partition.String()
}

// Fused reports whether the request engages any fusion (filter or
// aggregation) beyond plain scoring.
func (r *ScoreRequest) Fused() bool { return len(r.Where) > 0 || r.Agg != AggNone }

// validateWhere checks that every pushed-down conjunct is executable inside
// the scoring kernel: a numeric comparison with a known operator. String
// comparisons stay in the DBMS's SELECT path.
func validateWhere(conds []db.Condition) error {
	for _, c := range conds {
		if c.Value.IsString {
			return fmt.Errorf("pipeline: fused WHERE on %q: only numeric comparisons can be pushed into scoring", c.Column)
		}
		if _, err := kernel.ParsePredOp(c.Op); err != nil {
			return fmt.Errorf("pipeline: fused WHERE on %q: %v", c.Column, err)
		}
	}
	return nil
}

// ParsePredictStmt validates a SELECT ... FROM PREDICT(...) statement and
// returns the fused scoring request it describes: the PREDICT() arguments
// become sp_score_model parameters, the WHERE clause is pushed down, and the
// projection picks the result shape (prediction column, COUNT(*), or
// GROUP BY prediction).
func ParsePredictStmt(ps *db.PredictStmt) (*ScoreRequest, error) {
	req, err := scoreParamsFromMap(ps.Params, false)
	if err != nil {
		return nil, err
	}
	if err := validateWhere(ps.Where); err != nil {
		return nil, err
	}
	req.Where = ps.Where
	for _, col := range ps.Columns {
		if !strings.EqualFold(col, "prediction") {
			return nil, fmt.Errorf("pipeline: PREDICT exposes only the %q column, not %q", "prediction", col)
		}
	}
	for _, a := range ps.Aggregates {
		if a.Fn != db.AggCount {
			return nil, fmt.Errorf("pipeline: PREDICT supports only COUNT(*) aggregation, not %s", a.Fn)
		}
	}
	switch {
	case ps.GroupBy != "":
		if !strings.EqualFold(ps.GroupBy, "prediction") {
			return nil, fmt.Errorf("pipeline: PREDICT can only GROUP BY prediction, not %q", ps.GroupBy)
		}
		req.Agg = AggGroupCount
	case len(ps.Aggregates) > 0:
		req.Agg = AggCount
	}
	return req, nil
}

// projectionFor decides the column subset to convert for scoring with f on
// tbl. Projection engages only when every model feature resolves to a REAL
// column and the features appear in the table's schema order — then the
// pruned conversion is value-identical to the legacy full conversion's
// feature prefix. Any mismatch falls back to the legacy positional
// conversion (nil = all REAL columns), keeping pre-fusion behavior
// bit-for-bit.
func projectionFor(tbl *db.Table, featureNames []string) []string {
	if len(featureNames) == 0 {
		return nil
	}
	last := -1
	for _, name := range featureNames {
		ci := tbl.ColumnIndex(name)
		if ci <= last || tbl.Columns[ci].Type != db.Float32Col {
			return nil
		}
		last = ci
	}
	return featureNames
}

// buildPredicates lowers the batch's shared WHERE conjuncts onto the merged
// dataset. A conjunct over a model feature streams straight from the row
// during traversal (no separate column pass at all); a conjunct over any
// other numeric column gathers that column per request — bounded by the same
// row count as the scoring input — and concatenates across the batch.
func (p *Pipeline) buildPredicates(reqs []*ScoreRequest, datas []*dataset.Dataset, where []db.Condition) ([]kernel.Predicate, error) {
	total := 0
	for _, d := range datas {
		total += d.NumRecords()
	}
	featNames := datas[0].FeatureNames
	preds := make([]kernel.Predicate, 0, len(where))
	for _, c := range where {
		op, err := kernel.ParsePredOp(c.Op)
		if err != nil {
			return nil, fmt.Errorf("pipeline: fused WHERE on %q: %v", c.Column, err)
		}
		if c.Value.IsString {
			return nil, fmt.Errorf("pipeline: fused WHERE on %q: only numeric comparisons can be pushed into scoring", c.Column)
		}
		feat := -1
		for j, name := range featNames {
			if name == c.Column {
				feat = j
				break
			}
		}
		if feat >= 0 {
			preds = append(preds, kernel.Predicate{Feature: feat, Op: op, Value: c.Value.N})
			continue
		}
		col := make([]float64, 0, total)
		for i, r := range reqs {
			want := datas[i].NumRecords()
			tbl, err := p.DB.Table(r.Data)
			if err != nil {
				return nil, err
			}
			part, err := tbl.NumericColumnPrefix(c.Column, want)
			if err != nil {
				return nil, fmt.Errorf("pipeline: fused WHERE: %v", err)
			}
			if len(part) != want {
				return nil, fmt.Errorf("pipeline: fused WHERE on %q: table %q shrank during the scan", c.Column, r.Data)
			}
			col = append(col, part...)
		}
		preds = append(preds, kernel.Predicate{Feature: -1, Col: col, Op: op, Value: c.Value.N})
	}
	return preds, nil
}

// aggResult assembles one request's fused-aggregate result table. counts is
// the engine's fused class histogram when it produced one (WantCounts path);
// otherwise preds is the request's materialized prediction slice and the
// histogram is computed here with the batch primitive.
func aggResult(mode AggMode, preds []int, counts []int64) (*db.Table, error) {
	if counts == nil {
		counts = tensor.Bincount(preds, 0)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	switch mode {
	case AggCount:
		out, err := db.NewTable("result", []db.Column{{Name: "count", Type: db.Int64Col}})
		if err != nil {
			return nil, err
		}
		return out, out.Insert([]db.Value{db.Int(total)})
	case AggGroupCount:
		out, err := db.NewTable("result", []db.Column{
			{Name: "prediction", Type: db.Int64Col},
			{Name: "count", Type: db.Int64Col},
		})
		if err != nil {
			return nil, err
		}
		for class, c := range counts {
			if c == 0 {
				continue
			}
			if err := out.Insert([]db.Value{db.Int(int64(class)), db.Int(c)}); err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pipeline: aggResult on mode %s", mode)
	}
}

// AggTable assembles a fused-aggregate result table from merged predictions
// or a merged class histogram — aggResult exported for the scale-out
// router, whose gather path rebuilds the single-node result shape from
// per-shard pieces.
func AggTable(mode AggMode, preds []int, counts []int64) (*db.Table, error) {
	return aggResult(mode, preds, counts)
}

// wantCounts reports whether the fused score-then-aggregate request should
// ask the engine for class counts instead of predictions. Only a
// single-request batch can skip materialization: a coalesced batch must fan
// predictions back out per request. Engines that ignore WantCounts still
// return predictions and the caller aggregates those instead.
func wantCounts(agg AggMode, batchSize int) bool {
	return agg != AggNone && batchSize == 1
}

// fusedPartition locates one request's slice of the merged scoring output:
// its scanned row range [off, off+nr) maps through the selection to the
// dense output range [outLo, outLo+scoredN).
func fusedPartition(sel *kernel.Selection, off, nr int) (outLo, scoredN int) {
	if sel == nil {
		return off, nr
	}
	return sel.Rank(off), sel.CountRange(off, off+nr)
}
