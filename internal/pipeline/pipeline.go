// Package pipeline implements the end-to-end analytics and model-scoring
// pipeline of the paper's Fig. 2: a T-SQL query arrives at the (mini) DBMS,
// which launches an external Python-like runtime, copies the model blob and
// the input rows to it, pre-processes both, scores on a chosen backend
// (CPU, GPU or FPGA), post-processes, and returns the predictions to the
// DBMS. Every stage is a named span, producing the Fig. 11 end-to-end
// latency breakdown, and the functional path really executes each stage
// (deserialization, conversion, scoring, result-table assembly).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/faults"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/kernel"
	"accelscore/internal/model"
	"accelscore/internal/obs"
	"accelscore/internal/sim"
)

// ScoreProcName is the stored procedure the pipeline implements, the
// equivalent of the paper's Fig. 3 Python-script procedure.
const ScoreProcName = "sp_score_model"

// Stage names of the Fig. 11 breakdown.
const (
	StagePythonInvocation = "Python invocation"
	StageDataTransfer     = "data transfer"
	StageModelPreproc     = "model pre-processing"
	StageDataPreproc      = "data pre-processing"
	StageModelScoring     = "model scoring"
	StagePostprocessing   = "post-processing"
)

// Metric names the pipeline publishes into an attached obs.Observer.
// Simulated durations carry the _sim_ infix; wall-clock ones do not.
const (
	// MetricQueriesTotal counts scoring queries by terminal status
	// {status="ok"|"error"}.
	MetricQueriesTotal = "accelscore_queries_total"
	// MetricStatementsTotal counts parsed statements by kind
	// {kind="select"|"create"|"insert"|"exec"|"parse_error"}.
	MetricStatementsTotal = "accelscore_statements_total"
	// MetricQueryWallSeconds is the measured wall-clock histogram of
	// successful scoring queries.
	MetricQueryWallSeconds = "accelscore_query_wall_seconds"
	// MetricStageSimSeconds is the simulated per-stage latency histogram
	// {stage=<Fig. 11 stage name>}.
	MetricStageSimSeconds = "accelscore_stage_sim_seconds"
	// MetricBackendSimSeconds is the simulated scoring-stage latency
	// histogram {backend=<engine name>}.
	MetricBackendSimSeconds = "accelscore_backend_sim_seconds"
	// MetricBackendSelectedTotal counts scoring-backend resolutions
	// {backend, source="param"|"advisor"|"default"}.
	MetricBackendSelectedTotal = "accelscore_backend_selected_total"
	// MetricAdvisorDecisionsTotal counts offload-advisor picks
	// {backend=<chosen engine>}.
	MetricAdvisorDecisionsTotal = "accelscore_advisor_decisions_total"
	// MetricOLCSimSecondsTotal accumulates the scoring detail by the Fig. 6
	// taxonomy {backend, kind="overhead"|"transfer"|"compute"}.
	MetricOLCSimSecondsTotal = "accelscore_olc_sim_seconds_total"
	// MetricModelCacheEventsTotal counts compiled-model cache activity
	// {event="hit"|"miss"|"eviction"}.
	MetricModelCacheEventsTotal = "accelscore_model_cache_events_total"
	// MetricModelCacheEntries gauges the resident compiled models.
	MetricModelCacheEntries = "accelscore_model_cache_entries"
	// MetricSnapshotCacheEventsTotal counts dataset snapshot-cache activity
	// {event="hit"|"miss"}.
	MetricSnapshotCacheEventsTotal = "accelscore_snapshot_cache_events_total"
	// MetricEstimatesTotal counts Estimate calls {backend=<engine name>}.
	MetricEstimatesTotal = "accelscore_estimates_total"
	// MetricRowsScannedTotal accumulates rows read out of the column store by
	// scoring queries (post @limit, pre filter).
	MetricRowsScannedTotal = "accelscore_rows_scanned_total"
	// MetricRowsScoredTotal accumulates rows that survived the pushed-down
	// filter and reached the scoring kernel.
	MetricRowsScoredTotal = "accelscore_rows_scored_total"
	// MetricFusedQueriesTotal counts fused scoring queries by shape
	// {mode="filter"|"aggregate"|"filter_aggregate"}.
	MetricFusedQueriesTotal = "accelscore_fused_queries_total"
	// MetricFusedStageSimSeconds is MetricStageSimSeconds restricted to fused
	// queries {stage}, for before/after fusion comparisons.
	MetricFusedStageSimSeconds = "accelscore_fused_stage_sim_seconds"
	// MetricStageCPUSeconds is the MEASURED per-stage thread-CPU-time
	// histogram {stage} (populated only with attribution enabled).
	MetricStageCPUSeconds = "accelscore_stage_cpu_seconds"
	// MetricStageAllocBytesTotal accumulates measured heap-allocated bytes
	// per stage {stage} (attribution only).
	MetricStageAllocBytesTotal = "accelscore_stage_alloc_bytes_total"
	// MetricStageAllocObjectsTotal accumulates measured heap-allocated
	// objects per stage {stage} (attribution only).
	MetricStageAllocObjectsTotal = "accelscore_stage_alloc_objects_total"
	// MetricTransferBytesTotal accumulates simulated bytes crossing the
	// runtime boundary {direction="in"|"out"}.
	MetricTransferBytesTotal = "accelscore_transfer_bytes_total"
)

// Attribution stage names for the two transfer legs (the measured stages
// reuse the Fig. 11 stage names directly).
const (
	StageTransferIn  = StageDataTransfer + " (in)"
	StageTransferOut = StageDataTransfer + " (out)"
)

// Pipeline executes scoring queries end to end.
type Pipeline struct {
	// DB is the hosting database.
	DB *db.Database
	// Runtime models the external-process environment (hw.DefaultRuntime
	// for the paper's loose integration, hw.TightlyIntegratedRuntime for
	// the §IV-E ablation).
	Runtime hw.RuntimeSpec
	// Registry resolves backend names from the @backend parameter.
	Registry *backend.Registry
	// Advisor, when set, resolves @backend = 'auto' (and missing @backend)
	// to the predicted-optimal engine.
	Advisor *core.Advisor
	// DefaultBackend is used when no @backend parameter is given and no
	// Advisor is configured.
	DefaultBackend string
	// Cache, when set, enables the hot path: compiled models (deserialized
	// forest + flat kernel form + stats) are reused across queries keyed by
	// model name and blob checksum, and input tables are converted to
	// datasets through their version-keyed snapshot cache. Nil reproduces
	// the paper's baseline, which redoes all pre-processing per query.
	Cache *ModelCache
	// Obs, when set, publishes per-query telemetry: stage/backend latency
	// histograms, query/error/cache/advisor counters into Obs.Registry, and
	// one trace per query (wall-clock spans plus the simulated Fig. 11 and
	// Fig. 7 timelines) into Obs.Tracer. Nil disables all publication.
	Obs *obs.Observer
	// Faults, when set, is handed to every engine call so the simulators
	// surface injected device-busy/corrupt/crash/hang conditions at their
	// O/L/C boundaries. Nil (the default) injects nothing.
	Faults *faults.Injector
}

// QueryResult is the outcome of an end-to-end scoring query.
type QueryResult struct {
	// Predictions holds one class per scored row.
	Predictions []int
	// Table is the result table returned to the DBMS (a "prediction"
	// column), mirroring the Pandas DataFrame return of §II.
	Table *db.Table
	// Backend is the engine that performed the scoring.
	Backend string
	// Timeline is the end-to-end breakdown (Fig. 11 stages; the scoring
	// stage appears as one span).
	Timeline sim.Timeline
	// ScoringDetail is the backend's own component breakdown (Fig. 7).
	ScoringDetail sim.Timeline
	// CacheHit reports whether the model came from the compiled-model cache
	// (always false when the pipeline has no cache).
	CacheHit bool
	// CacheStats snapshots the cache counters after the query (zero value
	// when the pipeline has no cache).
	CacheStats CacheStats
	// TraceID identifies the query's trace in the pipeline's observer
	// (empty when no observer with a tracer is attached).
	TraceID string
	// BatchSize is the number of queries scored in the same coalesced
	// pipeline run (1 when the query ran alone).
	BatchSize int
	// FallbackFrom names the originally requested backend when the executor
	// degraded the query to another engine ("" = no fallback).
	FallbackFrom string
	// FallbackReason records why the executor degraded
	// ("breaker_open", "deadline", or "fault"; "" = no fallback).
	FallbackReason string
	// Retries is how many extra attempts the executor made after retryable
	// faults before this result was produced.
	Retries int
	// RowsScanned is how many rows left the column store for this query
	// (after @limit pushdown, before the fused WHERE).
	RowsScanned int
	// RowsScored is how many rows survived the pushed-down filter and were
	// actually scored (== RowsScanned without a filter).
	RowsScored int
	// ScoredRows lists the scan ordinals (0-based, post-@limit) of the rows
	// behind Predictions, in ascending order, when a selection (pushed-down
	// WHERE and/or partition) restricted scoring; nil when every scanned row
	// was scored. The scale-out router merges shard results by these
	// ordinals, so the merged prediction order is bit-identical to a
	// single-node run.
	ScoredRows []int
	// Fused reports whether the query engaged operator fusion (a pushed-down
	// WHERE and/or a fused aggregate).
	Fused bool
	// Attribution is the query's measured per-stage resource cost (thread
	// CPU time, heap allocations, transfer bytes), populated when the
	// pipeline's observer has Attribution enabled. Coalesced batches
	// amortize the leader's measured cost the same way timelines are:
	// fixed per-invocation stages divide by the batch size,
	// row-proportional stages scale by row share.
	Attribution obs.Attribution
}

// ExecQuery parses and runs one T-SQL statement. SELECTs execute directly in
// the DBMS; EXEC sp_score_model runs the full scoring pipeline.
func (p *Pipeline) ExecQuery(sql string) (*QueryResult, error) {
	return p.ExecQueryCtx(context.Background(), sql)
}

// ExecQueryCtx is ExecQuery under a caller context: the query's deadline and
// cancellation propagate through every pipeline stage into the engine call.
func (p *Pipeline) ExecQueryCtx(ctx context.Context, sql string) (*QueryResult, error) {
	st, err := db.Parse(sql)
	if err != nil {
		p.countStatement("parse_error")
		return nil, err
	}
	return p.ExecStatementCtx(ctx, st)
}

// ExecStatement runs one parsed statement, counting it by kind. Exported so
// front-ends that parse once to inspect the statement (the concurrent
// executor) can dispatch without re-parsing.
func (p *Pipeline) ExecStatement(st db.Statement) (*QueryResult, error) {
	return p.ExecStatementCtx(context.Background(), st)
}

// ExecStatementCtx is ExecStatement under a caller context. Non-scoring
// statements execute in the DBMS and only check the context up front (they
// are short); scoring statements thread it all the way into the engine.
func (p *Pipeline) ExecStatementCtx(ctx context.Context, st db.Statement) (*QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *db.SelectStmt:
		p.countStatement("select")
		tbl, err := p.DB.Select(s)
		if err != nil {
			return nil, err
		}
		return &QueryResult{Table: tbl}, nil
	case *db.CreateStmt:
		p.countStatement("create")
		return &QueryResult{}, p.DB.Create(s)
	case *db.InsertStmt:
		p.countStatement("insert")
		_, err := p.DB.InsertRows(s)
		return &QueryResult{}, err
	case *db.DeleteStmt:
		p.countStatement("delete")
		_, err := p.DB.Delete(s)
		return &QueryResult{}, err
	case *db.UpdateStmt:
		p.countStatement("update")
		_, err := p.DB.Update(s)
		return &QueryResult{}, err
	case *db.ExecStmt:
		p.countStatement("exec")
		if !strings.EqualFold(s.Proc, ScoreProcName) {
			return nil, fmt.Errorf("pipeline: unknown procedure %q", s.Proc)
		}
		return p.ScoreProcCtx(ctx, s)
	case *db.PredictStmt:
		p.countStatement("predict")
		return p.ScorePredictCtx(ctx, s)
	default:
		return nil, fmt.Errorf("pipeline: unsupported statement %T", st)
	}
}

// NoteStatement bumps the statement-kind counter. Exported so alternative
// front-ends keep statement accounting consistent with ExecQuery.
func (p *Pipeline) NoteStatement(kind string) { p.countStatement(kind) }

// ScoreRequest is a validated sp_score_model invocation: which model to run
// over which table on which backend. It is the unit the concurrent executor
// coalesces on.
type ScoreRequest struct {
	// Model names the stored model to score with.
	Model string
	// Data names the input table.
	Data string
	// Backend is the requested engine ("" = pipeline default, "auto" =
	// advisor).
	Backend string
	// Limit caps the scored rows (0 = all rows).
	Limit int
	// Timeout is the query's own deadline from @timeout (0 = none). The
	// executor turns it into a context deadline covering queueing,
	// coalescing, retries and fallback.
	Timeout time.Duration
	// Where holds pushed-down filter conjuncts (from @where or a PREDICT
	// statement's WHERE clause): rows failing them are skipped inside the
	// scoring kernel before any tree is traversed.
	Where []db.Condition
	// Agg is the fused aggregation over the predictions (COUNT(*) /
	// GROUP BY prediction); AggNone returns the prediction column.
	Agg AggMode
	// Partition restricts scoring to one hash partition of the scanned rows
	// (from @partition = 'k/n'); the zero value scores every row. The
	// scale-out router fans a query out as one sub-query per partition.
	Partition Partition
}

// ParseScoreParams validates an EXEC sp_score_model statement's parameters
// and returns the scoring request they describe.
func ParseScoreParams(ex *db.ExecStmt) (*ScoreRequest, error) {
	return scoreParamsFromMap(ex.Params, true)
}

// scoreParamsFromMap validates the parameter map shared by EXEC
// sp_score_model and SELECT ... FROM PREDICT(...). allowWhere admits the
// @where parameter (the EXEC spelling of the pushed-down filter; PREDICT
// statements use a real WHERE clause instead).
func scoreParamsFromMap(params map[string]db.Literal, allowWhere bool) (*ScoreRequest, error) {
	modelName, ok := params["model"]
	if !ok || !modelName.IsString {
		return nil, fmt.Errorf("pipeline: %s requires @model = '<name>'", ScoreProcName)
	}
	dataName, ok := params["data"]
	if !ok || !dataName.IsString {
		return nil, fmt.Errorf("pipeline: %s requires @data = '<table>'", ScoreProcName)
	}
	for name := range params {
		switch name {
		case "model", "data", "backend", "limit", "timeout", "partition":
		case "where":
			if !allowWhere {
				return nil, fmt.Errorf("pipeline: PREDICT takes a WHERE clause, not a @where parameter")
			}
		default:
			return nil, fmt.Errorf("pipeline: unknown parameter @%s", name)
		}
	}
	req := &ScoreRequest{Model: modelName.S, Data: dataName.S}
	if w, ok := params["where"]; ok {
		if !w.IsString {
			return nil, fmt.Errorf("pipeline: @where must be a string of AND-joined comparisons")
		}
		conds, err := db.ParseConditionList(w.S)
		if err != nil {
			return nil, fmt.Errorf("pipeline: @where: %v", err)
		}
		if err := validateWhere(conds); err != nil {
			return nil, err
		}
		req.Where = conds
	}
	if lim, ok := params["limit"]; ok {
		// Validate the parameter's type before its value so a string-valued
		// @limit reports a type error, not "must be positive".
		if lim.IsString {
			return nil, fmt.Errorf("pipeline: @limit must be a number, got a string")
		}
		n := int(lim.N)
		if n <= 0 {
			return nil, fmt.Errorf("pipeline: @limit must be a positive number")
		}
		req.Limit = n
	}
	if b, ok := params["backend"]; ok {
		if !b.IsString {
			return nil, fmt.Errorf("pipeline: @backend must be a string")
		}
		req.Backend = b.S
	}
	if part, ok := params["partition"]; ok {
		if !part.IsString {
			return nil, fmt.Errorf("pipeline: @partition must be a 'k/n' string")
		}
		p, err := ParsePartition(part.S)
		if err != nil {
			return nil, err
		}
		req.Partition = p
	}
	if to, ok := params["timeout"]; ok {
		// '50ms'-style duration strings, or a bare number of milliseconds.
		if to.IsString {
			d, err := time.ParseDuration(to.S)
			if err != nil {
				return nil, fmt.Errorf("pipeline: @timeout: %v", err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("pipeline: @timeout must be positive")
			}
			req.Timeout = d
		} else {
			if to.N <= 0 {
				return nil, fmt.Errorf("pipeline: @timeout must be positive")
			}
			req.Timeout = time.Duration(to.N * float64(time.Millisecond))
		}
	}
	return req, nil
}

// ScoreProc runs the scoring stored procedure:
//
//	EXEC sp_score_model @model = '<model>', @data = '<table>'
//	     [, @backend = '<name>|auto'] [, @limit = n]
func (p *Pipeline) ScoreProc(ex *db.ExecStmt) (*QueryResult, error) {
	return p.ScoreProcCtx(context.Background(), ex)
}

// ScoreProcCtx is ScoreProc under a caller context.
func (p *Pipeline) ScoreProcCtx(ctx context.Context, ex *db.ExecStmt) (*QueryResult, error) {
	req, err := ParseScoreParams(ex)
	if err != nil {
		// Parameter failures never reach the batch path's accounting, so
		// count them here.
		if reg := p.Obs.Metrics(); reg != nil {
			reg.Counter(MetricQueriesTotal, "Scoring queries by terminal status.",
				"status", "error").Inc()
		}
		return nil, err
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	results, err := p.ExecScoreBatchCtx(ctx, []*ScoreRequest{req})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ScorePredict runs a fused SELECT ... FROM PREDICT(...) statement.
func (p *Pipeline) ScorePredict(ps *db.PredictStmt) (*QueryResult, error) {
	return p.ScorePredictCtx(context.Background(), ps)
}

// ScorePredictCtx is ScorePredict under a caller context.
func (p *Pipeline) ScorePredictCtx(ctx context.Context, ps *db.PredictStmt) (*QueryResult, error) {
	req, err := ParsePredictStmt(ps)
	if err != nil {
		if reg := p.Obs.Metrics(); reg != nil {
			reg.Counter(MetricQueriesTotal, "Scoring queries by terminal status.",
				"status", "error").Inc()
		}
		return nil, err
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	results, err := p.ExecScoreBatchCtx(ctx, []*ScoreRequest{req})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ExecScore runs one validated scoring request end to end.
func (p *Pipeline) ExecScore(req *ScoreRequest) (*QueryResult, error) {
	results, err := p.ExecScoreBatch([]*ScoreRequest{req})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ExecScoreBatch runs a coalesced batch of scoring requests as ONE pipeline
// execution: the model blob is loaded and pre-processed once, the input rows
// are concatenated and scored in a single backend call, and the predictions
// are fanned back out per request. Every request must name the same model
// and backend (that is the coalescing key); input tables may differ. A
// shared-stage failure fails the whole batch.
func (p *Pipeline) ExecScoreBatch(reqs []*ScoreRequest) (results []*QueryResult, err error) {
	return p.ExecScoreBatchCtx(context.Background(), reqs)
}

// ExecScoreBatchCtx is ExecScoreBatch under a caller context: the context's
// deadline and cancellation cover the DBMS fetches and every pipeline stage,
// and reach the engine through the backend request. An already-expired
// context is shed before any work happens.
func (p *Pipeline) ExecScoreBatchCtx(ctx context.Context, reqs []*ScoreRequest) (results []*QueryResult, err error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("pipeline: empty scoring batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Failures before the stage loop (missing model or table) never reach
	// the batch accounting; every request in the batch fails together.
	reachedRun := false
	defer func() {
		if err != nil && !reachedRun {
			if reg := p.Obs.Metrics(); reg != nil {
				reg.Counter(MetricQueriesTotal, "Scoring queries by terminal status.",
					"status", "error").Add(float64(len(reqs)))
			}
		}
	}()
	first := reqs[0]
	fkey := first.FusionKey()
	for _, r := range reqs[1:] {
		if r.Model != first.Model || r.Backend != first.Backend {
			return nil, fmt.Errorf("pipeline: coalesced batch mixes (model=%q backend=%q) with (model=%q backend=%q)",
				first.Model, first.Backend, r.Model, r.Backend)
		}
		if r.FusionKey() != fkey {
			return nil, fmt.Errorf("pipeline: coalesced batch mixes fused-query shapes (%q vs %q)",
				fkey, r.FusionKey())
		}
	}

	// DBMS side: fetch the model blob once, resolve the model BEFORE any row
	// leaves the column store — its feature names drive projection pruning —
	// then fetch each request's input rows. With the hot path enabled, the
	// (pruned) table->dataset conversion comes from the table's
	// version-keyed subset-snapshot cache instead of being redone per query.
	blob, err := p.DB.LoadModelBlob(first.Model)
	if err != nil {
		return nil, err
	}
	rm, err := p.resolveModel(first.Model, blob)
	if err != nil {
		return nil, fmt.Errorf("pipeline: model pre-processing: %w", err)
	}
	datas := make([]*dataset.Dataset, len(reqs))
	for i, r := range reqs {
		tbl, err := p.DB.Table(r.Data)
		if err != nil {
			return nil, err
		}
		// Projection pruning + @limit pushdown: only the model's feature
		// columns convert, and only the first @limit rows are ever read.
		features := projectionFor(tbl, rm.f.FeatureNames)
		var data *dataset.Dataset
		if p.Cache != nil {
			var snapHit bool
			data, snapHit, err = tbl.DatasetSnapshotFor(features, r.Limit)
			if reg := p.Obs.Metrics(); reg != nil && err == nil {
				ev := "miss"
				if snapHit {
					ev = "hit"
				}
				reg.Counter(MetricSnapshotCacheEventsTotal,
					"Dataset snapshot cache activity on the scoring-query input path.",
					"event", ev).Inc()
			}
		} else {
			// The baseline deliberately redoes the conversion per query, but
			// still prunes columns and bounds rows.
			data, err = tbl.DatasetFor(features, r.Limit)
		}
		if err != nil {
			return nil, err
		}
		datas[i] = data
	}
	plan := &batchPlan{
		modelName: first.Model, blob: blob, backend: first.Backend,
		datas: datas, resolved: rm, where: first.Where, agg: first.Agg,
	}
	if len(datas) > 1 {
		if plan.merged, err = dataset.Concat(datas); err != nil {
			return nil, err
		}
	} else {
		plan.merged = datas[0]
	}
	if len(first.Where) > 0 {
		preds, err := p.buildPredicates(reqs, datas, first.Where)
		if err != nil {
			return nil, err
		}
		plan.sel = kernel.BuildSelection(plan.merged.NumRecords(), preds,
			plan.merged.X, plan.merged.NumFeatures())
	}
	if first.Partition.Active() {
		plan.part = first.Partition
		plan.sel = partitionSelection(plan.sel, first.Partition, datas)
	}
	reachedRun = true
	return p.scoreBatch(ctx, plan)
}

// batchPlan is everything scoreBatch needs for one fused pipeline run. The
// zero fusion state (nil sel, AggNone) reproduces pre-fusion behavior
// bit-for-bit.
type batchPlan struct {
	modelName string
	blob      []byte
	backend   string
	// datas holds each request's (pruned, bounded) input rows; merged is
	// their concatenation (== datas[0] for a batch of one).
	datas  []*dataset.Dataset
	merged *dataset.Dataset
	// resolved carries a pre-resolved model from ExecScoreBatchCtx (which
	// needs the feature names before data fetch); nil makes scoreBatch
	// resolve it inside the model pre-processing stage (the Run path).
	resolved *resolvedModel
	// sel marks the rows surviving the pushed-down WHERE (nil = all rows);
	// where retains the conjuncts for trace attributes.
	sel   *kernel.Selection
	where []db.Condition
	agg   AggMode
	// part records the hash partition already folded into sel, for trace
	// attributes and the fused-shape decision.
	part Partition
}

// resolvedModel is the model in executable form plus how it was obtained
// ("hit" | "miss" | "coalesced" against the compiled-model cache, "" without
// one).
type resolvedModel struct {
	f        *forest.Forest
	compiled *kernel.Compiled
	stats    forest.Stats
	status   string
}

// resolveModel probes the compiled-model cache and, on a miss, deserializes
// the blob and lowers it to the flat kernel form — exactly once even under
// concurrent cold starts (GetOrCompile's singleflight). Recomputing the blob
// checksum on every query is the invalidation mechanism — a replaced model
// produces a different key and misses, so no DB write-path hook is needed.
func (p *Pipeline) resolveModel(modelName string, blob []byte) (*resolvedModel, error) {
	if p.Cache == nil {
		f, err := model.Unmarshal(blob)
		if err != nil {
			return nil, err
		}
		return &resolvedModel{f: f, stats: f.ComputeStats()}, nil
	}
	key := cacheKey(modelName, blob)
	e, status, evicted, err := p.Cache.GetOrCompile(key, func() (*cacheEntry, error) {
		cf, cerr := model.Unmarshal(blob)
		if cerr != nil {
			return nil, cerr
		}
		cc, cerr := cf.Compile()
		if cerr != nil {
			return nil, cerr
		}
		return &cacheEntry{key: key, forest: cf, compiled: cc, stats: cf.ComputeStats()}, nil
	})
	if reg := p.Obs.Metrics(); reg != nil {
		reg.Counter(MetricModelCacheEventsTotal, helpModelCacheEvents, "event", status).Inc()
		if evicted > 0 {
			reg.Counter(MetricModelCacheEventsTotal, helpModelCacheEvents, "event", "eviction").
				Add(float64(evicted))
		}
	}
	if err != nil {
		return nil, err
	}
	return &resolvedModel{f: e.forest, compiled: e.compiled, stats: e.stats, status: status}, nil
}

// WarmModel loads the named model's blob and ensures its compiled form is
// resident in the model cache, so the first scoring query pays a cache hit
// instead of a deserialize+compile. Returns the cache status ("hit" when it
// was already resident, "miss" when this call compiled it, "nocache" when
// the pipeline has no cache and warming is a no-op). The scale-out router
// fans this out to every shard when a model is registered.
func (p *Pipeline) WarmModel(name string) (string, error) {
	blob, err := p.DB.LoadModelBlob(name)
	if err != nil {
		return "", err
	}
	rm, err := p.resolveModel(name, blob)
	if err != nil {
		return "", err
	}
	if p.Cache == nil {
		return "nocache", nil
	}
	return rm.status, nil
}

// Run executes the pipeline stages over a model blob and a dataset,
// returning real predictions and the simulated end-to-end breakdown.
func (p *Pipeline) Run(blob []byte, data *dataset.Dataset, backendName string) (*QueryResult, error) {
	return p.run(context.Background(), "", blob, data, backendName)
}

// run is the single-query stage loop behind Run. modelName (may be empty
// for direct Run calls) only contributes to the cache key; the blob checksum
// does the real identification.
func (p *Pipeline) run(ctx context.Context, modelName string, blob []byte, data *dataset.Dataset, backendName string) (*QueryResult, error) {
	results, err := p.scoreBatch(ctx, &batchPlan{
		modelName: modelName, blob: blob, backend: backendName,
		datas: []*dataset.Dataset{data}, merged: data,
	})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// scoreBatch is the stage loop behind Run, ScoreProc and ExecScoreBatch. It
// executes ONE pipeline run over the concatenation of the batch's datasets
// and fans the predictions back out: one Python invocation, one model
// pre-processing, one backend call over all rows. Each sub-query's simulated
// timeline charges an amortized share — fixed per-invocation stages divide
// by the batch size, row-proportional stages scale by row share — which is
// the cross-query version of the paper's overhead-amortization argument. A
// batch of one with no fusion reproduces the old per-query behavior exactly.
//
// With fusion engaged, the plan's selection rides into the backend request
// so dead rows are skipped inside the kernel's block loop, and a fused
// aggregate asks the engine for class counts so the prediction column is
// never materialized (falling back to counting predictions for engines that
// ignore WantCounts).
func (p *Pipeline) scoreBatch(ctx context.Context, plan *batchPlan) (results []*QueryResult, err error) {
	datas := plan.datas
	n := len(datas)
	if n == 0 {
		return nil, fmt.Errorf("pipeline: empty scoring batch")
	}
	merged := plan.merged
	if merged == nil {
		merged = datas[0]
		if n > 1 {
			if merged, err = dataset.Concat(datas); err != nil {
				return nil, err
			}
		}
	}
	records := int64(merged.NumRecords())
	features := int64(merged.NumFeatures())
	scoredRows := records
	if plan.sel != nil {
		scoredRows = int64(plan.sel.Count())
	}
	// A partition-only selection is a parallelism device, not user-visible
	// query fusion, so it does not flip the Fused flag or the fusion metrics.
	fused := len(plan.where) > 0 || plan.agg != AggNone

	// Resource attribution brackets the three measured stages with cost
	// samples. Thread-CPU deltas are only meaningful while the goroutine is
	// pinned to one OS thread, so the stage loop locks itself for the
	// duration when attribution is on.
	attribOn := p.Obs.AttributionOn()
	var costPreproc, costScoring, costPost obs.StageCost
	if attribOn {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}

	subs := make([]*QueryResult, n)
	trs := make([]*obs.Trace, n)
	for i, d := range datas {
		tr := p.Obs.StartTrace(ScoreProcName)
		tr.SetAttr("model", plan.modelName)
		tr.SetAttr("records", strconv.Itoa(d.NumRecords()))
		if n > 1 {
			tr.SetAttr("coalesced_batch", strconv.Itoa(n))
		}
		if len(plan.where) > 0 {
			tr.SetAttr("where", db.FormatConditions(plan.where))
		}
		if plan.agg != AggNone {
			tr.SetAttr("agg", plan.agg.String())
		}
		if plan.part.Active() {
			tr.SetAttr("partition", plan.part.String())
		}
		trs[i] = tr
		subs[i] = &QueryResult{TraceID: tr.ID(), BatchSize: n, Fused: fused}
	}
	start := time.Now()
	defer func() {
		for i := range subs {
			p.observeQuery(trs[i], start, subs[i], err)
		}
	}()

	// Model pre-processing: resolve the compiled form (cache probe, blob
	// deserialization, kernel lowering) unless the caller already did — the
	// fused exec path resolves before data fetch because the feature names
	// drive projection pruning.
	rm := plan.resolved
	var sample obs.CostSample
	if attribOn {
		sample = obs.ReadCostSample()
	}
	endPreproc := p.startSpanAll(trs, StageModelPreproc)
	if rm == nil {
		rm, err = p.resolveModel(plan.modelName, plan.blob)
		if err != nil {
			endPreproc()
			return nil, fmt.Errorf("pipeline: model pre-processing: %w", err)
		}
	}
	endPreproc()
	if attribOn {
		next := obs.ReadCostSample()
		costPreproc = next.Sub(sample)
		costPreproc.Stage = StageModelPreproc
		sample = next
	}
	f, compiled, stats, status := rm.f, rm.compiled, rm.stats, rm.status
	// "hit" and "coalesced" both mean the compiled model was already
	// resident (or becoming resident) in the runtime: no blob transfer, no
	// deserialization charge.
	resident := status == "hit" || status == "coalesced"

	// Model scoring on the selected backend, over the merged rows. The
	// pre-compiled kernel form rides along so CPU engines skip their
	// per-query lowering; the selection rides along so every engine skips
	// filtered-out rows.
	eng, source, err := p.resolveBackend(plan.backend, stats, records)
	if err != nil {
		return nil, err
	}
	if reg := p.Obs.Metrics(); reg != nil {
		reg.Counter(MetricBackendSelectedTotal,
			"Scoring-backend resolutions by engine and decision source.",
			"backend", eng.Name(), "source", source).Inc()
	}
	if err = ctx.Err(); err != nil {
		return nil, err
	}
	if attribOn {
		sample = obs.ReadCostSample()
	}
	endScoring := p.startSpanAll(trs, StageModelScoring)
	scored, err := eng.Score(&backend.Request{
		Forest: f, Data: merged, Compiled: compiled, Stats: &stats,
		Ctx: ctx, Inject: p.Faults,
		Sel: plan.sel, WantCounts: wantCounts(plan.agg, n),
	})
	endScoring()
	if attribOn {
		next := obs.ReadCostSample()
		costScoring = next.Sub(sample)
		costScoring.Stage = StageModelScoring
	}
	if err != nil {
		p.noteScoringError(trs, eng.Name(), err)
		return nil, fmt.Errorf("pipeline: scoring on %s: %w", eng.Name(), err)
	}
	if reg := p.Obs.Metrics(); reg != nil {
		reg.Counter(MetricRowsScannedTotal,
			"Rows read from the column store by scoring queries.").Add(float64(records))
		reg.Counter(MetricRowsScoredTotal,
			"Rows that survived pushed-down filters and were scored.").Add(float64(scoredRows))
		if fused {
			mode := "aggregate"
			switch {
			case len(plan.where) > 0 && plan.agg != AggNone:
				mode = "filter_aggregate"
			case len(plan.where) > 0:
				mode = "filter"
			}
			reg.Counter(MetricFusedQueriesTotal,
				"Fused scoring queries by shape.", "mode", mode).Add(float64(n))
		}
	}

	// Post-processing: land each sub-query's slice of the output in its own
	// result table — the prediction column in one bulk append, or, for a
	// fused aggregate, the class histogram without ever materializing
	// predictions.
	if attribOn {
		sample = obs.ReadCostSample()
	}
	endPost := p.startSpanAll(trs, StagePostprocessing)
	// Dense rank -> merged row ordinal, materialized once so each sub-query
	// can report which scan ordinals its predictions belong to.
	var selRows []int
	if plan.sel != nil && plan.agg == AggNone {
		selRows = make([]int, plan.sel.Count())
		plan.sel.ForEach(func(row, rank int) { selRows[rank] = row })
	}
	offset := 0
	for i, d := range datas {
		nr := d.NumRecords()
		outLo, scoredN := fusedPartition(plan.sel, offset, nr)
		var preds []int
		if scored.Predictions != nil {
			preds = scored.Predictions[outLo : outLo+scoredN]
		}
		subs[i].RowsScanned = nr
		subs[i].RowsScored = scoredN
		if selRows != nil {
			rows := make([]int, scoredN)
			for j, r := range selRows[outLo : outLo+scoredN] {
				rows[j] = r - offset
			}
			subs[i].ScoredRows = rows
		}
		offset += nr
		subs[i].Backend = eng.Name()
		var out *db.Table
		var terr error
		if plan.agg == AggNone {
			out, terr = db.NewTable("predictions", []db.Column{{Name: "prediction", Type: db.Int64Col}})
			if terr == nil {
				terr = out.AppendIntRows(preds)
			}
			subs[i].Predictions = preds
		} else {
			// scored.ClassCounts is only produced for single-request
			// batches, so using it for request i is exact.
			out, terr = aggResult(plan.agg, preds, scored.ClassCounts)
		}
		if terr != nil {
			endPost()
			err = terr
			return nil, err
		}
		subs[i].Table = out
	}
	endPost()
	if attribOn {
		costPost = obs.ReadCostSample().Sub(sample)
		costPost.Stage = StagePostprocessing
	}

	// Simulated Fig. 11 breakdown of the whole batch, in canonical stage
	// order: invocation, inbound transfer (rows always; the blob only when
	// the compiled model is not resident), model pre-processing (checksum
	// verification on hit, full deserialization otherwise), data
	// pre-processing, scoring, post-processing, outbound transfer. Inbound
	// stages charge for every scanned row (the filter runs inside scoring);
	// post-processing and the outbound transfer charge only for rows that
	// were scored, and a fused aggregate returns a histogram instead of a
	// prediction column.
	var batch sim.Timeline
	batch.Add(StagePythonInvocation, sim.KindPipeline, p.Runtime.ProcessInvoke)
	inBytes := records * features * dataset.BytesPerValue
	if !resident {
		inBytes += int64(len(plan.blob))
	}
	batch.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(inBytes))
	if resident {
		batch.Add(StageModelPreproc, sim.KindPipeline, p.Runtime.ModelCacheHitTime(int64(len(plan.blob))))
	} else {
		batch.Add(StageModelPreproc, sim.KindPipeline, p.Runtime.ModelDeserializeTime(int64(len(plan.blob))))
	}
	batch.Add(StageDataPreproc, sim.KindPipeline, p.Runtime.DataPreprocTime(records, features))
	batch.Add(StageModelScoring, sim.KindCompute, scored.Timeline.Total())
	batch.Add(StagePostprocessing, sim.KindPipeline, p.Runtime.PostprocTime(scoredRows))
	outBytes := scoredRows * 4
	if plan.agg != AggNone {
		outBytes = int64(stats.Classes+1) * 16
	}
	batch.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(outBytes))

	// Batch-level attribution in canonical order: the two transfer legs carry
	// the (simulated) byte volumes that crossed the runtime boundary, the
	// three measured stages carry real thread-CPU and allocation deltas.
	var batchAttrib obs.Attribution
	if attribOn {
		batchAttrib = obs.Attribution{
			{Stage: StageTransferIn, BytesMoved: inBytes},
			costPreproc,
			costScoring,
			costPost,
			{Stage: StageTransferOut, BytesMoved: outBytes},
		}
	}

	for i, d := range datas {
		if n == 1 {
			subs[i].Timeline = batch
			subs[i].ScoringDetail = scored.Timeline
			subs[i].Attribution = batchAttrib
		} else {
			share := 1.0 / float64(n)
			if records > 0 {
				share = float64(d.NumRecords()) / float64(records)
			}
			subs[i].Timeline = apportionTimeline(&batch, n, share)
			subs[i].ScoringDetail = scaleTimeline(&scored.Timeline, share)
			if attribOn {
				subs[i].Attribution = apportionAttribution(batchAttrib, n, share)
			}
		}
		subs[i].CacheHit = status == "hit"
		if p.Cache != nil {
			subs[i].CacheStats = p.Cache.Stats()
		}
	}
	results = subs
	return results, nil
}

// startSpanAll opens the named wall-clock span on every trace in the batch,
// returning a closer that ends them all.
func (p *Pipeline) startSpanAll(trs []*obs.Trace, name string) func() {
	ends := make([]func(), len(trs))
	for i, tr := range trs {
		ends[i] = tr.StartSpan(name)
	}
	return func() {
		for _, end := range ends {
			end()
		}
	}
}

// apportionTimeline computes one sub-query's amortized share of a coalesced
// batch timeline: fixed per-invocation stages (Python invocation, model
// pre-processing) divide evenly across the batch — the amortization win —
// while row-proportional stages scale by the sub-query's row share.
func apportionTimeline(batch *sim.Timeline, n int, share float64) sim.Timeline {
	var out sim.Timeline
	for _, s := range batch.Spans() {
		d := s.Duration
		switch s.Name {
		case StagePythonInvocation, StageModelPreproc:
			d /= time.Duration(n)
		default:
			d = time.Duration(float64(d) * share)
		}
		out.AddSpan(sim.Span{Name: s.Name, Kind: s.Kind, Duration: d})
	}
	return out
}

// apportionAttribution is apportionTimeline for measured costs: fixed
// per-invocation stages (model pre-processing happens once per batch) divide
// evenly across the batch, row-proportional stages scale by the sub-query's
// row share.
func apportionAttribution(batch obs.Attribution, n int, share float64) obs.Attribution {
	out := make(obs.Attribution, 0, len(batch))
	for _, c := range batch {
		switch c.Stage {
		case StagePythonInvocation, StageModelPreproc:
			out = append(out, c.Divide(n))
		default:
			out = append(out, c.Scale(share))
		}
	}
	return out
}

// scaleTimeline scales every span duration by share, preserving names and
// kinds.
func scaleTimeline(t *sim.Timeline, share float64) sim.Timeline {
	var out sim.Timeline
	for _, s := range t.Spans() {
		out.AddSpan(sim.Span{Name: s.Name, Kind: s.Kind, Duration: time.Duration(float64(s.Duration) * share)})
	}
	return out
}

const helpModelCacheEvents = "Compiled-model cache hits, misses and evictions."

// MetricScoringErrorsTotal counts failed engine calls by error class
// {backend, class="deadline"|"canceled"|"injected_fault"|"error"}.
const MetricScoringErrorsTotal = "accelscore_scoring_errors_total"

// ErrorClass buckets an error for metrics and traces: context expiry,
// client cancellation, injected faults, everything else.
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case faults.Injected(err):
		return "injected_fault"
	default:
		return "error"
	}
}

// noteScoringError marks each trace in the batch with the failed engine and
// error class, and counts the failure, so injected faults and deadline hits
// are visible on /metrics and /debug/queries.
func (p *Pipeline) noteScoringError(trs []*obs.Trace, engine string, err error) {
	class := ErrorClass(err)
	if reg := p.Obs.Metrics(); reg != nil {
		reg.Counter(MetricScoringErrorsTotal, "Failed engine scoring calls by error class.",
			"backend", engine, "class", class).Add(float64(len(trs)))
	}
	for _, tr := range trs {
		tr.SetAttr("scoring_error_class", class)
		tr.SetAttr("scoring_engine", engine)
	}
}

// countStatement bumps the statement-kind counter when an observer is
// attached.
func (p *Pipeline) countStatement(kind string) {
	if reg := p.Obs.Metrics(); reg != nil {
		reg.Counter(MetricStatementsTotal, "Parsed T-SQL statements by kind.", "kind", kind).Inc()
	}
}

// observeQuery publishes one finished scoring query: status counters, the
// wall-clock and simulated latency histograms, the O/L/C component
// accumulation, cache gauges, and the trace's simulated timelines. It runs
// via defer so error paths are counted exactly once.
func (p *Pipeline) observeQuery(tr *obs.Trace, start time.Time, res *QueryResult, err error) {
	if p.Obs == nil {
		return
	}
	wall := time.Since(start)
	if reg := p.Obs.Registry; reg != nil {
		status := "ok"
		if err != nil {
			status = "error"
		}
		reg.Counter(MetricQueriesTotal, "Scoring queries by terminal status.", "status", status).Inc()
		if err == nil && res != nil {
			// The exemplar links each latency bucket to the freshest trace
			// that landed in it, so a P99 spike on /metrics resolves to
			// /debug/trace/<id>.
			reg.Histogram(MetricQueryWallSeconds,
				"Measured wall-clock latency of successful scoring queries.", obs.DefBuckets).
				ObserveExemplar(wall.Seconds(), res.TraceID)
			for _, row := range res.Timeline.Aggregate().Rows {
				reg.Histogram(MetricStageSimSeconds,
					"Simulated per-stage latency of the Fig. 11 end-to-end breakdown.",
					obs.DefBuckets, "stage", row.Name).Observe(row.Duration.Seconds())
			}
			if res.Fused {
				for _, row := range res.Timeline.Aggregate().Rows {
					reg.Histogram(MetricFusedStageSimSeconds,
						"Simulated per-stage latency of fused scoring queries.",
						obs.DefBuckets, "stage", row.Name).Observe(row.Duration.Seconds())
				}
			}
			reg.Histogram(MetricBackendSimSeconds,
				"Simulated scoring-stage latency by backend.",
				obs.DefBuckets, "backend", res.Backend).Observe(res.ScoringDetail.Total().Seconds())
			for _, kind := range []sim.Kind{sim.KindOverhead, sim.KindTransfer, sim.KindCompute} {
				if d := res.ScoringDetail.TotalKind(kind); d > 0 {
					reg.Counter(MetricOLCSimSecondsTotal,
						"Simulated scoring time by the Fig. 6 O/L/C taxonomy.",
						"backend", res.Backend, "kind", kind.String()).Add(d.Seconds())
				}
			}
			for _, c := range res.Attribution {
				switch c.Stage {
				case StageTransferIn:
					reg.Counter(MetricTransferBytesTotal,
						"Bytes crossing the runtime boundary by direction.",
						"direction", "in").Add(float64(c.BytesMoved))
				case StageTransferOut:
					reg.Counter(MetricTransferBytesTotal,
						"Bytes crossing the runtime boundary by direction.",
						"direction", "out").Add(float64(c.BytesMoved))
				default:
					reg.Histogram(MetricStageCPUSeconds,
						"Measured per-stage thread CPU time (attribution).",
						obs.DefBuckets, "stage", c.Stage).
						ObserveExemplar(c.CPUTime.Seconds(), res.TraceID)
					reg.Counter(MetricStageAllocBytesTotal,
						"Measured heap bytes allocated per stage (attribution).",
						"stage", c.Stage).Add(float64(c.AllocBytes))
					reg.Counter(MetricStageAllocObjectsTotal,
						"Measured heap objects allocated per stage (attribution).",
						"stage", c.Stage).Add(float64(c.AllocObjects))
				}
			}
		}
		if p.Cache != nil {
			reg.Gauge(MetricModelCacheEntries, "Compiled models resident in the cache.").
				Set(float64(p.Cache.Len()))
		}
	}
	if tr != nil {
		if err != nil {
			tr.SetAttr("error", err.Error())
		} else if res != nil {
			tr.SetAttr("backend", res.Backend)
			if res.CacheHit {
				tr.SetAttr("model_cache", "hit")
			}
			tr.AddTimeline("simulated end-to-end (Fig. 11)", &res.Timeline)
			tr.AddTimeline("simulated scoring detail (Fig. 7)", &res.ScoringDetail)
			tr.SetStageCosts(res.Attribution)
		}
		tr.Finish()
	}
}

// resolveBackend maps the @backend parameter to an engine, consulting the
// advisor for "auto" or when unset. The returned source labels the decision
// path for the selection counters: "param", "advisor" or "default".
func (p *Pipeline) resolveBackend(name string, stats forest.Stats, records int64) (backend.Backend, string, error) {
	source := "param"
	if name == "" {
		if p.Advisor != nil {
			name = "auto"
		} else {
			name = p.DefaultBackend
			source = "default"
		}
	}
	if strings.EqualFold(name, "auto") {
		source = "advisor"
		if p.Advisor == nil {
			return nil, "", fmt.Errorf("pipeline: @backend = 'auto' requires an advisor")
		}
		cfg := core.Config{
			Features: stats.Features, Classes: stats.Classes,
			Trees: stats.Trees, Depth: stats.MaxDepth, Records: records,
		}
		d, err := p.Advisor.Decide(cfg)
		if err != nil {
			return nil, "", err
		}
		name = d.Best.Name
		if reg := p.Obs.Metrics(); reg != nil {
			reg.Counter(MetricAdvisorDecisionsTotal,
				"Offload-advisor backend picks.", "backend", name).Inc()
		}
	}
	eng, ok := p.Registry.Get(name)
	if !ok {
		return nil, "", fmt.Errorf("pipeline: backend %q is not registered (have %v)", name, p.Registry.Names())
	}
	return eng, source, nil
}

// Estimate produces the Fig. 11 breakdown for a hypothetical query —
// records rows of a model with the given stats and serialized size — without
// materializing data, using the named backend (or the advisor's choice for
// "auto"/""). This is how the million-record end-to-end rows are generated.
func (p *Pipeline) Estimate(stats forest.Stats, records int64, blobBytes int64, backendName string) (*sim.Timeline, string, error) {
	eng, _, err := p.resolveBackend(backendName, stats, records)
	if err != nil {
		return nil, "", err
	}
	scoring, err := eng.Estimate(stats, records)
	if err != nil {
		return nil, "", err
	}
	features := int64(stats.Features)
	var tl sim.Timeline
	tl.Add(StagePythonInvocation, sim.KindPipeline, p.Runtime.ProcessInvoke)
	tl.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(blobBytes+records*features*dataset.BytesPerValue))
	tl.Add(StageModelPreproc, sim.KindPipeline, p.Runtime.ModelDeserializeTime(blobBytes))
	tl.Add(StageDataPreproc, sim.KindPipeline, p.Runtime.DataPreprocTime(records, features))
	tl.Add(StageModelScoring, sim.KindCompute, scoring.Total())
	tl.Add(StagePostprocessing, sim.KindPipeline, p.Runtime.PostprocTime(records))
	tl.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(records*4))
	if p.Obs != nil {
		if reg := p.Obs.Registry; reg != nil {
			reg.Counter(MetricEstimatesTotal, "Hypothetical-query estimates by backend.",
				"backend", eng.Name()).Inc()
		}
		tr := p.Obs.StartTrace("estimate " + eng.Name())
		tr.SetAttr("backend", eng.Name())
		tr.SetAttr("records", strconv.FormatInt(records, 10))
		tr.AddTimeline("simulated end-to-end (Fig. 11)", &tl)
		tr.AddTimeline("simulated scoring detail (Fig. 7)", scoring)
		tr.Finish()
	}
	return &tl, eng.Name(), nil
}
