// Package pipeline implements the end-to-end analytics and model-scoring
// pipeline of the paper's Fig. 2: a T-SQL query arrives at the (mini) DBMS,
// which launches an external Python-like runtime, copies the model blob and
// the input rows to it, pre-processes both, scores on a chosen backend
// (CPU, GPU or FPGA), post-processes, and returns the predictions to the
// DBMS. Every stage is a named span, producing the Fig. 11 end-to-end
// latency breakdown, and the functional path really executes each stage
// (deserialization, conversion, scoring, result-table assembly).
package pipeline

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/kernel"
	"accelscore/internal/model"
	"accelscore/internal/obs"
	"accelscore/internal/sim"
)

// ScoreProcName is the stored procedure the pipeline implements, the
// equivalent of the paper's Fig. 3 Python-script procedure.
const ScoreProcName = "sp_score_model"

// Stage names of the Fig. 11 breakdown.
const (
	StagePythonInvocation = "Python invocation"
	StageDataTransfer     = "data transfer"
	StageModelPreproc     = "model pre-processing"
	StageDataPreproc      = "data pre-processing"
	StageModelScoring     = "model scoring"
	StagePostprocessing   = "post-processing"
)

// Metric names the pipeline publishes into an attached obs.Observer.
// Simulated durations carry the _sim_ infix; wall-clock ones do not.
const (
	// MetricQueriesTotal counts scoring queries by terminal status
	// {status="ok"|"error"}.
	MetricQueriesTotal = "accelscore_queries_total"
	// MetricStatementsTotal counts parsed statements by kind
	// {kind="select"|"create"|"insert"|"exec"|"parse_error"}.
	MetricStatementsTotal = "accelscore_statements_total"
	// MetricQueryWallSeconds is the measured wall-clock histogram of
	// successful scoring queries.
	MetricQueryWallSeconds = "accelscore_query_wall_seconds"
	// MetricStageSimSeconds is the simulated per-stage latency histogram
	// {stage=<Fig. 11 stage name>}.
	MetricStageSimSeconds = "accelscore_stage_sim_seconds"
	// MetricBackendSimSeconds is the simulated scoring-stage latency
	// histogram {backend=<engine name>}.
	MetricBackendSimSeconds = "accelscore_backend_sim_seconds"
	// MetricBackendSelectedTotal counts scoring-backend resolutions
	// {backend, source="param"|"advisor"|"default"}.
	MetricBackendSelectedTotal = "accelscore_backend_selected_total"
	// MetricAdvisorDecisionsTotal counts offload-advisor picks
	// {backend=<chosen engine>}.
	MetricAdvisorDecisionsTotal = "accelscore_advisor_decisions_total"
	// MetricOLCSimSecondsTotal accumulates the scoring detail by the Fig. 6
	// taxonomy {backend, kind="overhead"|"transfer"|"compute"}.
	MetricOLCSimSecondsTotal = "accelscore_olc_sim_seconds_total"
	// MetricModelCacheEventsTotal counts compiled-model cache activity
	// {event="hit"|"miss"|"eviction"}.
	MetricModelCacheEventsTotal = "accelscore_model_cache_events_total"
	// MetricModelCacheEntries gauges the resident compiled models.
	MetricModelCacheEntries = "accelscore_model_cache_entries"
	// MetricSnapshotCacheEventsTotal counts dataset snapshot-cache activity
	// {event="hit"|"miss"}.
	MetricSnapshotCacheEventsTotal = "accelscore_snapshot_cache_events_total"
	// MetricEstimatesTotal counts Estimate calls {backend=<engine name>}.
	MetricEstimatesTotal = "accelscore_estimates_total"
)

// Pipeline executes scoring queries end to end.
type Pipeline struct {
	// DB is the hosting database.
	DB *db.Database
	// Runtime models the external-process environment (hw.DefaultRuntime
	// for the paper's loose integration, hw.TightlyIntegratedRuntime for
	// the §IV-E ablation).
	Runtime hw.RuntimeSpec
	// Registry resolves backend names from the @backend parameter.
	Registry *backend.Registry
	// Advisor, when set, resolves @backend = 'auto' (and missing @backend)
	// to the predicted-optimal engine.
	Advisor *core.Advisor
	// DefaultBackend is used when no @backend parameter is given and no
	// Advisor is configured.
	DefaultBackend string
	// Cache, when set, enables the hot path: compiled models (deserialized
	// forest + flat kernel form + stats) are reused across queries keyed by
	// model name and blob checksum, and input tables are converted to
	// datasets through their version-keyed snapshot cache. Nil reproduces
	// the paper's baseline, which redoes all pre-processing per query.
	Cache *ModelCache
	// Obs, when set, publishes per-query telemetry: stage/backend latency
	// histograms, query/error/cache/advisor counters into Obs.Registry, and
	// one trace per query (wall-clock spans plus the simulated Fig. 11 and
	// Fig. 7 timelines) into Obs.Tracer. Nil disables all publication.
	Obs *obs.Observer
}

// QueryResult is the outcome of an end-to-end scoring query.
type QueryResult struct {
	// Predictions holds one class per scored row.
	Predictions []int
	// Table is the result table returned to the DBMS (a "prediction"
	// column), mirroring the Pandas DataFrame return of §II.
	Table *db.Table
	// Backend is the engine that performed the scoring.
	Backend string
	// Timeline is the end-to-end breakdown (Fig. 11 stages; the scoring
	// stage appears as one span).
	Timeline sim.Timeline
	// ScoringDetail is the backend's own component breakdown (Fig. 7).
	ScoringDetail sim.Timeline
	// CacheHit reports whether the model came from the compiled-model cache
	// (always false when the pipeline has no cache).
	CacheHit bool
	// CacheStats snapshots the cache counters after the query (zero value
	// when the pipeline has no cache).
	CacheStats CacheStats
	// TraceID identifies the query's trace in the pipeline's observer
	// (empty when no observer with a tracer is attached).
	TraceID string
}

// ExecQuery parses and runs one T-SQL statement. SELECTs execute directly in
// the DBMS; EXEC sp_score_model runs the full scoring pipeline.
func (p *Pipeline) ExecQuery(sql string) (*QueryResult, error) {
	st, err := db.Parse(sql)
	if err != nil {
		p.countStatement("parse_error")
		return nil, err
	}
	switch s := st.(type) {
	case *db.SelectStmt:
		p.countStatement("select")
		tbl, err := p.DB.Select(s)
		if err != nil {
			return nil, err
		}
		return &QueryResult{Table: tbl}, nil
	case *db.CreateStmt:
		p.countStatement("create")
		return &QueryResult{}, p.DB.Create(s)
	case *db.InsertStmt:
		p.countStatement("insert")
		_, err := p.DB.InsertRows(s)
		return &QueryResult{}, err
	case *db.ExecStmt:
		p.countStatement("exec")
		if !strings.EqualFold(s.Proc, ScoreProcName) {
			return nil, fmt.Errorf("pipeline: unknown procedure %q", s.Proc)
		}
		return p.ScoreProc(s)
	default:
		return nil, fmt.Errorf("pipeline: unsupported statement %T", st)
	}
}

// ScoreProc runs the scoring stored procedure:
//
//	EXEC sp_score_model @model = '<model>', @data = '<table>'
//	     [, @backend = '<name>|auto'] [, @limit = n]
func (p *Pipeline) ScoreProc(ex *db.ExecStmt) (res *QueryResult, err error) {
	// Failures before the stage loop (bad parameters, missing model or
	// table) never reach run's own accounting, so count them here.
	reachedRun := false
	defer func() {
		if err != nil && !reachedRun {
			if reg := p.Obs.Metrics(); reg != nil {
				reg.Counter(MetricQueriesTotal, "Scoring queries by terminal status.",
					"status", "error").Inc()
			}
		}
	}()
	modelName, ok := ex.Params["model"]
	if !ok || !modelName.IsString {
		return nil, fmt.Errorf("pipeline: %s requires @model = '<name>'", ScoreProcName)
	}
	dataName, ok := ex.Params["data"]
	if !ok || !dataName.IsString {
		return nil, fmt.Errorf("pipeline: %s requires @data = '<table>'", ScoreProcName)
	}
	for name := range ex.Params {
		switch name {
		case "model", "data", "backend", "limit":
		default:
			return nil, fmt.Errorf("pipeline: unknown parameter @%s", name)
		}
	}

	// DBMS side: fetch the model blob and the input rows. With the hot path
	// enabled, the table->dataset conversion comes from the table's
	// version-keyed snapshot cache instead of being redone per query.
	blob, err := p.DB.LoadModelBlob(modelName.S)
	if err != nil {
		return nil, err
	}
	tbl, err := p.DB.Table(dataName.S)
	if err != nil {
		return nil, err
	}
	var data *dataset.Dataset
	if p.Cache != nil {
		var snapHit bool
		data, snapHit, err = tbl.DatasetSnapshotCached()
		if reg := p.Obs.Metrics(); reg != nil && err == nil {
			ev := "miss"
			if snapHit {
				ev = "hit"
			}
			reg.Counter(MetricSnapshotCacheEventsTotal,
				"Dataset snapshot cache activity on the scoring-query input path.",
				"event", ev).Inc()
		}
	} else {
		data, err = db.DatasetFromTable(tbl)
	}
	if err != nil {
		return nil, err
	}
	if lim, ok := ex.Params["limit"]; ok {
		// Validate the parameter's type before its value so a string-valued
		// @limit reports a type error, not "must be positive".
		if lim.IsString {
			return nil, fmt.Errorf("pipeline: @limit must be a number, got a string")
		}
		n := int(lim.N)
		if n <= 0 {
			return nil, fmt.Errorf("pipeline: @limit must be a positive number")
		}
		data = data.Head(n)
	}

	backendName := ""
	if b, ok := ex.Params["backend"]; ok {
		if !b.IsString {
			return nil, fmt.Errorf("pipeline: @backend must be a string")
		}
		backendName = b.S
	}
	reachedRun = true
	return p.run(modelName.S, blob, data, backendName)
}

// Run executes the pipeline stages over a model blob and a dataset,
// returning real predictions and the simulated end-to-end breakdown.
func (p *Pipeline) Run(blob []byte, data *dataset.Dataset, backendName string) (*QueryResult, error) {
	return p.run("", blob, data, backendName)
}

// run is the stage loop behind Run and ScoreProc. modelName (may be empty
// for direct Run calls) only contributes to the cache key; the blob checksum
// does the real identification.
func (p *Pipeline) run(modelName string, blob []byte, data *dataset.Dataset, backendName string) (res *QueryResult, err error) {
	res = &QueryResult{}
	records := int64(data.NumRecords())
	features := int64(data.NumFeatures())

	tr := p.Obs.StartTrace(ScoreProcName)
	res.TraceID = tr.ID()
	tr.SetAttr("model", modelName)
	tr.SetAttr("records", strconv.FormatInt(records, 10))
	start := time.Now()
	defer func() { p.observeQuery(tr, start, res, err) }()

	// Cache probe: recomputing the blob checksum on every query is the
	// invalidation mechanism — a replaced model produces a different key and
	// misses, so no DB write-path hook is needed.
	var (
		f        *forest.Forest
		compiled *kernel.Compiled
		stats    forest.Stats
		hit      bool
		key      string
	)
	if p.Cache != nil {
		key = cacheKey(modelName, blob)
		if e, ok := p.Cache.lookup(key); ok {
			f, compiled, stats, hit = e.forest, e.compiled, e.stats, true
		}
		if reg := p.Obs.Metrics(); reg != nil {
			ev := "miss"
			if hit {
				ev = "hit"
			}
			reg.Counter(MetricModelCacheEventsTotal, helpModelCacheEvents, "event", ev).Inc()
		}
	}

	// Stage 1: launch the external runtime.
	res.Timeline.Add(StagePythonInvocation, sim.KindPipeline, p.Runtime.ProcessInvoke)

	// Stage 2: copy the model blob and the input rows into the runtime. On
	// a cache hit the compiled model is already resident, so only the rows
	// move.
	inBytes := records * features * dataset.BytesPerValue
	if !hit {
		inBytes += int64(len(blob))
	}
	res.Timeline.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(inBytes))

	// Stage 3: model pre-processing — deserialize the blob and lower it to
	// the flat kernel form, or, on a hit, just the checksum verification the
	// cache probe performed (near-zero: the Fig. 11 "tightly integrated"
	// model cost, reproduced by the cache).
	endPreproc := tr.StartSpan(StageModelPreproc)
	if hit {
		res.Timeline.Add(StageModelPreproc, sim.KindPipeline, p.Runtime.ModelCacheHitTime(int64(len(blob))))
	} else {
		f, err = model.Unmarshal(blob)
		if err != nil {
			return nil, fmt.Errorf("pipeline: model pre-processing: %w", err)
		}
		stats = f.ComputeStats()
		res.Timeline.Add(StageModelPreproc, sim.KindPipeline, p.Runtime.ModelDeserializeTime(int64(len(blob))))
		if p.Cache != nil {
			compiled, err = f.Compile()
			if err != nil {
				return nil, fmt.Errorf("pipeline: model pre-processing: %w", err)
			}
			evicted := p.Cache.store(&cacheEntry{key: key, forest: f, compiled: compiled, stats: stats})
			if reg := p.Obs.Metrics(); reg != nil && evicted > 0 {
				reg.Counter(MetricModelCacheEventsTotal, helpModelCacheEvents, "event", "eviction").
					Add(float64(evicted))
			}
		}
	}
	endPreproc()
	res.CacheHit = hit

	// Stage 4: data pre-processing — feature extraction / dataframe prep.
	res.Timeline.Add(StageDataPreproc, sim.KindPipeline, p.Runtime.DataPreprocTime(records, features))

	// Stage 5: model scoring on the selected backend. The pre-compiled
	// kernel form rides along so CPU engines skip their per-query lowering.
	eng, source, err := p.resolveBackend(backendName, stats, records)
	if err != nil {
		return nil, err
	}
	if reg := p.Obs.Metrics(); reg != nil {
		reg.Counter(MetricBackendSelectedTotal,
			"Scoring-backend resolutions by engine and decision source.",
			"backend", eng.Name(), "source", source).Inc()
	}
	endScoring := tr.StartSpan(StageModelScoring)
	scored, err := eng.Score(&backend.Request{Forest: f, Data: data, Compiled: compiled, Stats: &stats})
	endScoring()
	if err != nil {
		return nil, fmt.Errorf("pipeline: scoring on %s: %w", eng.Name(), err)
	}
	res.Backend = eng.Name()
	res.Predictions = scored.Predictions
	res.ScoringDetail = scored.Timeline
	res.Timeline.Add(StageModelScoring, sim.KindCompute, scored.Timeline.Total())

	// Stage 6: post-processing — land the prediction column in one bulk
	// append instead of one Insert per row.
	endPost := tr.StartSpan(StagePostprocessing)
	out, err := db.NewTable("predictions", []db.Column{{Name: "prediction", Type: db.Int64Col}})
	if err != nil {
		return nil, err
	}
	if err := out.AppendIntRows(scored.Predictions); err != nil {
		return nil, err
	}
	endPost()
	res.Table = out
	res.Timeline.Add(StagePostprocessing, sim.KindPipeline, p.Runtime.PostprocTime(records))

	// Return path: copy predictions back to the DBMS.
	res.Timeline.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(records*4))
	if p.Cache != nil {
		res.CacheStats = p.Cache.Stats()
	}
	return res, nil
}

const helpModelCacheEvents = "Compiled-model cache hits, misses and evictions."

// countStatement bumps the statement-kind counter when an observer is
// attached.
func (p *Pipeline) countStatement(kind string) {
	if reg := p.Obs.Metrics(); reg != nil {
		reg.Counter(MetricStatementsTotal, "Parsed T-SQL statements by kind.", "kind", kind).Inc()
	}
}

// observeQuery publishes one finished scoring query: status counters, the
// wall-clock and simulated latency histograms, the O/L/C component
// accumulation, cache gauges, and the trace's simulated timelines. It runs
// via defer so error paths are counted exactly once.
func (p *Pipeline) observeQuery(tr *obs.Trace, start time.Time, res *QueryResult, err error) {
	if p.Obs == nil {
		return
	}
	wall := time.Since(start)
	if reg := p.Obs.Registry; reg != nil {
		status := "ok"
		if err != nil {
			status = "error"
		}
		reg.Counter(MetricQueriesTotal, "Scoring queries by terminal status.", "status", status).Inc()
		if err == nil && res != nil {
			reg.Histogram(MetricQueryWallSeconds,
				"Measured wall-clock latency of successful scoring queries.", obs.DefBuckets).
				Observe(wall.Seconds())
			for _, row := range res.Timeline.Aggregate().Rows {
				reg.Histogram(MetricStageSimSeconds,
					"Simulated per-stage latency of the Fig. 11 end-to-end breakdown.",
					obs.DefBuckets, "stage", row.Name).Observe(row.Duration.Seconds())
			}
			reg.Histogram(MetricBackendSimSeconds,
				"Simulated scoring-stage latency by backend.",
				obs.DefBuckets, "backend", res.Backend).Observe(res.ScoringDetail.Total().Seconds())
			for _, kind := range []sim.Kind{sim.KindOverhead, sim.KindTransfer, sim.KindCompute} {
				if d := res.ScoringDetail.TotalKind(kind); d > 0 {
					reg.Counter(MetricOLCSimSecondsTotal,
						"Simulated scoring time by the Fig. 6 O/L/C taxonomy.",
						"backend", res.Backend, "kind", kind.String()).Add(d.Seconds())
				}
			}
		}
		if p.Cache != nil {
			reg.Gauge(MetricModelCacheEntries, "Compiled models resident in the cache.").
				Set(float64(p.Cache.Len()))
		}
	}
	if tr != nil {
		if err != nil {
			tr.SetAttr("error", err.Error())
		} else if res != nil {
			tr.SetAttr("backend", res.Backend)
			if res.CacheHit {
				tr.SetAttr("model_cache", "hit")
			}
			tr.AddTimeline("simulated end-to-end (Fig. 11)", &res.Timeline)
			tr.AddTimeline("simulated scoring detail (Fig. 7)", &res.ScoringDetail)
		}
		tr.Finish()
	}
}

// resolveBackend maps the @backend parameter to an engine, consulting the
// advisor for "auto" or when unset. The returned source labels the decision
// path for the selection counters: "param", "advisor" or "default".
func (p *Pipeline) resolveBackend(name string, stats forest.Stats, records int64) (backend.Backend, string, error) {
	source := "param"
	if name == "" {
		if p.Advisor != nil {
			name = "auto"
		} else {
			name = p.DefaultBackend
			source = "default"
		}
	}
	if strings.EqualFold(name, "auto") {
		source = "advisor"
		if p.Advisor == nil {
			return nil, "", fmt.Errorf("pipeline: @backend = 'auto' requires an advisor")
		}
		cfg := core.Config{
			Features: stats.Features, Classes: stats.Classes,
			Trees: stats.Trees, Depth: stats.MaxDepth, Records: records,
		}
		d, err := p.Advisor.Decide(cfg)
		if err != nil {
			return nil, "", err
		}
		name = d.Best.Name
		if reg := p.Obs.Metrics(); reg != nil {
			reg.Counter(MetricAdvisorDecisionsTotal,
				"Offload-advisor backend picks.", "backend", name).Inc()
		}
	}
	eng, ok := p.Registry.Get(name)
	if !ok {
		return nil, "", fmt.Errorf("pipeline: backend %q is not registered (have %v)", name, p.Registry.Names())
	}
	return eng, source, nil
}

// Estimate produces the Fig. 11 breakdown for a hypothetical query —
// records rows of a model with the given stats and serialized size — without
// materializing data, using the named backend (or the advisor's choice for
// "auto"/""). This is how the million-record end-to-end rows are generated.
func (p *Pipeline) Estimate(stats forest.Stats, records int64, blobBytes int64, backendName string) (*sim.Timeline, string, error) {
	eng, _, err := p.resolveBackend(backendName, stats, records)
	if err != nil {
		return nil, "", err
	}
	scoring, err := eng.Estimate(stats, records)
	if err != nil {
		return nil, "", err
	}
	features := int64(stats.Features)
	var tl sim.Timeline
	tl.Add(StagePythonInvocation, sim.KindPipeline, p.Runtime.ProcessInvoke)
	tl.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(blobBytes+records*features*dataset.BytesPerValue))
	tl.Add(StageModelPreproc, sim.KindPipeline, p.Runtime.ModelDeserializeTime(blobBytes))
	tl.Add(StageDataPreproc, sim.KindPipeline, p.Runtime.DataPreprocTime(records, features))
	tl.Add(StageModelScoring, sim.KindCompute, scoring.Total())
	tl.Add(StagePostprocessing, sim.KindPipeline, p.Runtime.PostprocTime(records))
	tl.Add(StageDataTransfer, sim.KindPipeline, p.Runtime.IPCTime(records*4))
	if p.Obs != nil {
		if reg := p.Obs.Registry; reg != nil {
			reg.Counter(MetricEstimatesTotal, "Hypothetical-query estimates by backend.",
				"backend", eng.Name()).Inc()
		}
		tr := p.Obs.StartTrace("estimate " + eng.Name())
		tr.SetAttr("backend", eng.Name())
		tr.SetAttr("records", strconv.FormatInt(records, 10))
		tr.AddTimeline("simulated end-to-end (Fig. 11)", &tl)
		tr.AddTimeline("simulated scoring detail (Fig. 7)", scoring)
		tr.Finish()
	}
	return &tl, eng.Name(), nil
}
