package pipeline_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"accelscore/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

var traceIDPat = regexp.MustCompile(`q-\d{6}`)

// costArgKeys are the measured-attribution args whose values depend on the
// machine; the golden file locks their presence, not their numbers.
var costArgKeys = map[string]bool{"cpu_us": true, "alloc_bytes": true, "alloc_objects": true}

// normalizeChrome strips the volatile parts of a Chrome trace export:
// measured wall-clock timestamps/durations, trace IDs, and attribution
// numbers. Simulated spans keep their exact durations — they derive from the
// deterministic hardware model, and regressions there are real.
func normalizeChrome(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("export has no traceEvents array")
	}
	for _, e := range evs {
		ev, ok := e.(map[string]any)
		if !ok {
			t.Fatalf("traceEvents entry is not an object: %v", e)
		}
		if ev["cat"] == "wall" || ev["cat"] == "query" {
			ev["ts"], ev["dur"] = 0.0, 0.0
		}
		if args, ok := ev["args"].(map[string]any); ok {
			for k, v := range args {
				if costArgKeys[k] {
					args[k] = "x"
				} else if s, ok := v.(string); ok {
					args[k] = traceIDPat.ReplaceAllString(s, "q-XXXXXX")
				}
			}
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestChromeTraceGolden exports the trace of one fixed seeded query and
// compares its normalized structure — span names, categories, track layout,
// deterministic simulated durations, attribution arg keys — against the
// checked-in golden file. Regenerate with `go test ./internal/pipeline
// -run TestChromeTraceGolden -update`.
func TestChromeTraceGolden(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 8, 200)
	o := obs.NewObserver()
	o.Attribution = true
	p.Obs = o
	res, err := p.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := o.Tracer.Get(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", res.TraceID)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := normalizeChrome(t, buf.Bytes())

	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("normalized Chrome export drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
