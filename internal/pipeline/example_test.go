package pipeline_test

import (
	"fmt"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
)

// Example runs the paper's Fig. 2 flow end to end: store a model and a
// table, execute the scoring stored procedure, inspect the result.
func Example() {
	database := db.New()
	data := dataset.Iris().Replicate(1000)
	tbl, _ := db.TableFromDataset("iris", data)
	_ = database.CreateTable(tbl)

	f, _ := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 8, Tree: forest.TrainConfig{MaxDepth: 10}, Seed: 1, Bootstrap: true,
	})
	_ = database.StoreModel("iris_rf", f)

	tb := platform.New()
	p := &pipeline.Pipeline{
		DB: database, Runtime: hw.DefaultRuntime(),
		Registry: tb.Registry, Advisor: tb.Advisor,
	}
	res, err := p.ExecQuery("EXEC sp_score_model @model = 'iris_rf', @data = 'iris', @backend = 'FPGA'")
	if err != nil {
		panic(err)
	}
	fmt.Println("backend:", res.Backend)
	fmt.Println("predictions:", len(res.Predictions))
	fmt.Println("first prediction:", res.Predictions[0])
	// Output:
	// backend: FPGA
	// predictions: 1000
	// first prediction: 0
}
