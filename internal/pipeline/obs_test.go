package pipeline_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
)

const obsQuery = "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"

// TestObserverPublishesQueryMetrics runs real queries through an observed
// pipeline and checks every metric family the dashboard scrapes: query
// counters, per-stage and per-backend latency histograms, selection and
// cache counters — all present in valid Prometheus exposition.
func TestObserverPublishesQueryMetrics(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 8, 200)
	p.Cache = pipeline.NewModelCache(4)
	o := obs.NewObserver()
	p.Obs = o

	for i := 0; i < 3; i++ {
		if _, err := p.ExecQuery(obsQuery); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.ExecQuery("EXEC sp_score_model @model='missing', @data='iris'"); err == nil {
		t.Fatal("query against missing model succeeded")
	}

	var sb strings.Builder
	if err := o.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, needle := range []string{
		pipeline.MetricQueriesTotal + `{status="ok"} 3`,
		pipeline.MetricQueriesTotal + `{status="error"} 1`,
		pipeline.MetricStatementsTotal + `{kind="exec"} 4`,
		pipeline.MetricStageSimSeconds + `_count{stage="model scoring"} 3`,
		pipeline.MetricStageSimSeconds + `_count{stage="model pre-processing"} 3`,
		pipeline.MetricBackendSimSeconds + `_count{backend="CPU_SKLearn"} 3`,
		pipeline.MetricBackendSelectedTotal + `{backend="CPU_SKLearn",source="param"} 3`,
		pipeline.MetricModelCacheEventsTotal + `{event="miss"} 1`,
		pipeline.MetricModelCacheEventsTotal + `{event="hit"} 2`,
		pipeline.MetricSnapshotCacheEventsTotal + `{event="hit"} 2`,
		pipeline.MetricSnapshotCacheEventsTotal + `{event="miss"} 1`,
		pipeline.MetricModelCacheEntries + " 1",
		pipeline.MetricQueryWallSeconds + "_count 3",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("exposition missing %q", needle)
		}
	}
	// O/L/C taxonomy counters: the CPU engine has overhead and compute.
	if !strings.Contains(text, pipeline.MetricOLCSimSecondsTotal+`{backend="CPU_SKLearn",kind="compute"}`) {
		t.Error("exposition missing O/L/C compute counter")
	}
}

// TestAdvisorDecisionCounters routes a query through @backend='auto' and
// expects advisor-decision and source="advisor" selection counters.
func TestAdvisorDecisionCounters(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 8, 200)
	o := obs.NewObserver()
	p.Obs = o
	res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='auto'")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := o.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, pipeline.MetricAdvisorDecisionsTotal+`{backend="`+res.Backend+`"} 1`) {
		t.Errorf("missing advisor decision counter for %s in:\n%s", res.Backend, text)
	}
	if !strings.Contains(text, pipeline.MetricBackendSelectedTotal+`{backend="`+res.Backend+`",source="advisor"} 1`) {
		t.Error("missing source=advisor selection counter")
	}
}

// TestQueryTraceMatchesTimeline is the acceptance check: a recorded query
// trace round-trips as valid Chrome trace-event JSON and its simulated span
// structure matches the query's sim.Timeline stages one for one.
func TestQueryTraceMatchesTimeline(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 8, 200)
	o := obs.NewObserver()
	p.Obs = o
	res, err := p.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("query has no trace id")
	}
	tr, ok := o.Tracer.Get(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", res.TraceID)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid Chrome trace-event JSON: %v", err)
	}

	// Locate the Fig. 11 track and compare span for span with the result's
	// timeline: same names, same O/L/C/pipeline categories, same durations,
	// sequential layout.
	simTID := -1
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "simulated end-to-end (Fig. 11)" {
			simTID = ev.TID
		}
	}
	if simTID < 0 {
		t.Fatal("trace has no Fig. 11 track")
	}
	spans := res.Timeline.Spans()
	idx := 0
	var cursor time.Duration // accumulate in duration space, like the exporter
	for _, ev := range file.TraceEvents {
		if ev.TID != simTID || ev.Ph != "X" {
			continue
		}
		if idx >= len(spans) {
			t.Fatalf("trace has more spans than the timeline's %d", len(spans))
		}
		want := spans[idx]
		if ev.Name != want.Name || ev.Cat != want.Kind.String() {
			t.Errorf("span %d = %q/%q, want %q/%q", idx, ev.Name, ev.Cat, want.Name, want.Kind.String())
		}
		if wantDur := float64(want.Duration.Nanoseconds()) / 1e3; ev.Dur != wantDur {
			t.Errorf("span %d dur = %v µs, want %v µs", idx, ev.Dur, wantDur)
		}
		if wantTS := float64(cursor.Nanoseconds()) / 1e3; ev.TS != wantTS {
			t.Errorf("span %d ts = %v, want %v", idx, ev.TS, wantTS)
		}
		cursor += want.Duration
		idx++
	}
	if idx != len(spans) {
		t.Fatalf("trace track has %d spans, timeline has %d", idx, len(spans))
	}

	// The backend attr and a measured wall span must be present too.
	foundAttr, foundWall := false, false
	for _, ev := range file.TraceEvents {
		if ev.Ph == "i" && ev.Args["backend"] == res.Backend {
			foundAttr = true
		}
		if ev.Ph == "X" && ev.Cat == "wall" && ev.Name == pipeline.StageModelScoring {
			foundWall = true
		}
	}
	if !foundAttr {
		t.Error("trace missing backend attribute")
	}
	if !foundWall {
		t.Error("trace missing measured scoring span")
	}
}

// TestErrorQueriesAreTracedAndCounted checks the error path: failing scoring
// queries finish their trace with an error attribute.
func TestErrorQueriesAreTracedAndCounted(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 8, 100)
	o := obs.NewObserver()
	p.Obs = o
	_, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='NoSuchEngine'")
	if err == nil {
		t.Fatal("unknown backend succeeded")
	}
	recent := o.Tracer.Recent()
	if len(recent) != 1 {
		t.Fatalf("traces = %d, want 1", len(recent))
	}
	snap := recent[0].Snapshot()
	if !snap.Done {
		t.Error("error trace not finished")
	}
	if snap.Attrs["error"] == "" {
		t.Error("error trace has no error attribute")
	}
}

// TestNoObserverIsZeroOverheadPath ensures an unobserved pipeline still
// works and produces no trace id.
func TestNoObserverIsZeroOverheadPath(t *testing.T) {
	p, _, _ := newPipeline(t, 4, 6, 100)
	res, err := p.ExecQuery(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" {
		t.Fatalf("unobserved query has trace id %q", res.TraceID)
	}
}
