package pipeline_test

import (
	"testing"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/model"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
)

// newPipeline builds a pipeline over a database holding the IRIS table and a
// trained model.
func newPipeline(t testing.TB, trees, depth, rows int) (*pipeline.Pipeline, *forest.Forest, *dataset.Dataset) {
	t.Helper()
	tb := platform.New()
	d := db.New()
	data := dataset.Iris().Replicate(rows)
	tbl, err := db.TableFromDataset("iris", data)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreModel("iris_rf", f); err != nil {
		t.Fatal(err)
	}
	p := &pipeline.Pipeline{
		DB:       d,
		Runtime:  hw.DefaultRuntime(),
		Registry: tb.Registry,
		Advisor:  tb.Advisor,
	}
	return p, f, data
}

func TestEndToEndQueryOnFPGA(t *testing.T) {
	p, f, data := newPipeline(t, 8, 10, 300)
	res, err := p.ExecQuery("EXEC sp_score_model @model = 'iris_rf', @data = 'iris', @backend = 'FPGA'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "FPGA" {
		t.Fatalf("backend = %s", res.Backend)
	}
	want := f.PredictBatch(data)
	if len(res.Predictions) != len(want) {
		t.Fatalf("%d predictions", len(res.Predictions))
	}
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("prediction %d differs", i)
		}
	}
	// The result table mirrors the predictions.
	if res.Table.NumRows() != len(want) {
		t.Fatalf("result table rows = %d", res.Table.NumRows())
	}
	if int(res.Table.Cell(0, 0).I) != want[0] {
		t.Fatal("result table content wrong")
	}
}

func TestFig11StagesPresent(t *testing.T) {
	p, _, _ := newPipeline(t, 4, 8, 100)
	res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'")
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{
		pipeline.StagePythonInvocation, pipeline.StageDataTransfer,
		pipeline.StageModelPreproc, pipeline.StageDataPreproc,
		pipeline.StageModelScoring, pipeline.StagePostprocessing,
	} {
		if res.Timeline.Component(stage) <= 0 {
			t.Fatalf("stage %q missing from timeline", stage)
		}
	}
	// Python invocation dominates a small query (Fig. 11 discussion).
	inv := res.Timeline.Component(pipeline.StagePythonInvocation)
	if frac := float64(inv) / float64(res.Timeline.Total()); frac < 0.5 {
		t.Fatalf("invocation fraction = %.2f, should dominate small queries", frac)
	}
}

func TestAutoBackendSelection(t *testing.T) {
	p, _, _ := newPipeline(t, 8, 10, 200)
	// 200 records, small model: the advisor must keep scoring on a CPU
	// engine.
	res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='auto'")
	if err != nil {
		t.Fatal(err)
	}
	switch res.Backend {
	case "CPU_SKLearn", "CPU_ONNX", "CPU_ONNX_52th":
	default:
		t.Fatalf("advisor offloaded a 200-record query to %s", res.Backend)
	}
	// Default (no @backend) also goes through the advisor.
	res2, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris'")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Backend != res.Backend {
		t.Fatalf("default backend %s != auto backend %s", res2.Backend, res.Backend)
	}
}

func TestLimitParameter(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 500)
	res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX', @limit=50")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 50 {
		t.Fatalf("limit ignored: %d predictions", len(res.Predictions))
	}
	if _, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @limit=-5"); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestSelectPassthrough(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 150)
	res, err := p.ExecQuery("SELECT TOP 3 sepal_length FROM iris")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("SELECT rows = %d", res.Table.NumRows())
	}
	if res.Predictions != nil {
		t.Fatal("SELECT produced predictions")
	}
}

func TestErrorPaths(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 100)
	bad := []string{
		"EXEC sp_other @model='iris_rf', @data='iris'",
		"EXEC sp_score_model @data='iris'",
		"EXEC sp_score_model @model='iris_rf'",
		"EXEC sp_score_model @model='missing', @data='iris'",
		"EXEC sp_score_model @model='iris_rf', @data='missing'",
		"EXEC sp_score_model @model='iris_rf', @data='iris', @backend='TPU'",
		"EXEC sp_score_model @model='iris_rf', @data='iris', @bogus=1",
		"EXEC sp_score_model @model=1, @data='iris'",
		"EXEC sp_score_model @model='iris_rf', @data='iris', @backend=3",
		"not sql at all (",
	}
	for _, sql := range bad {
		if _, err := p.ExecQuery(sql); err == nil {
			t.Fatalf("accepted: %q", sql)
		}
	}
}

func TestRAPIDSRejectedViaPipeline(t *testing.T) {
	// IRIS has 3 classes; FIL is binary-only, and the pipeline surfaces the
	// engine error.
	p, _, _ := newPipeline(t, 2, 6, 100)
	if _, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='GPU_RAPIDS'"); err == nil {
		t.Fatal("RAPIDS accepted a 3-class model")
	}
}

func TestEstimateMatchesRunShape(t *testing.T) {
	p, f, data := newPipeline(t, 8, 10, 400)
	blob, err := model.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Run(blob, data, "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	est, name, err := p.Estimate(f.ComputeStats(), 400, int64(len(blob)), "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	if name != "FPGA" {
		t.Fatalf("estimate backend = %s", name)
	}
	if run.Timeline.Total() != est.Total() {
		t.Fatalf("Run total %v != Estimate total %v", run.Timeline.Total(), est.Total())
	}
}

func TestEndToEndSpeedupShape(t *testing.T) {
	// §IV-D: for 1M HIGGS records with a 128-tree model, offloading the
	// scoring yields an end-to-end query speedup of ~2.6x — much less than
	// the ~70x scoring speedup, because data transfer dominates.
	tb := platform.New()
	p := &pipeline.Pipeline{Runtime: hw.DefaultRuntime(), Registry: tb.Registry, Advisor: tb.Advisor}
	stats := forest.SyntheticStats(128, 10, 28, 2)
	blobBytes := int64(stats.TotalNodes) * 21 // approx serialized size

	cpuTl, _, err := p.Estimate(stats, 1_000_000, blobBytes, "CPU_ONNX_52th")
	if err != nil {
		t.Fatal(err)
	}
	fpgaTl, _, err := p.Estimate(stats, 1_000_000, blobBytes, "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(cpuTl.Total()) / float64(fpgaTl.Total())
	if speedup < 1.8 || speedup > 5 {
		t.Fatalf("end-to-end speedup = %.2fx, paper reports ~2.6x", speedup)
	}
	// After offload, data transfer is the dominant stage (§IV-D).
	xfer := fpgaTl.Component(pipeline.StageDataTransfer)
	if float64(xfer)/float64(fpgaTl.Total()) < 0.4 {
		t.Fatalf("data transfer = %v of %v, should dominate the offloaded query",
			xfer, fpgaTl.Total())
	}
}

func TestTightIntegrationAblation(t *testing.T) {
	// §IV-E: tighter DBMS integration removes most application overheads.
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	loose := &pipeline.Pipeline{Runtime: hw.DefaultRuntime(), Registry: tb.Registry}
	tight := &pipeline.Pipeline{Runtime: hw.TightlyIntegratedRuntime(), Registry: tb.Registry}
	lt, _, err := loose.Estimate(stats, 1_000_000, 1<<21, "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	tt, _, err := tight.Estimate(stats, 1_000_000, 1<<21, "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	if improvement := float64(lt.Total()) / float64(tt.Total()); improvement < 3 {
		t.Fatalf("tight integration improvement = %.1fx, want > 3x", improvement)
	}
}

func TestScoringDetailPreserved(t *testing.T) {
	p, _, _ := newPipeline(t, 4, 10, 200)
	res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='FPGA'")
	if err != nil {
		t.Fatal(err)
	}
	if res.ScoringDetail.Component("software overhead") <= 0 {
		t.Fatal("scoring detail lost")
	}
	if res.Timeline.Component(pipeline.StageModelScoring) != res.ScoringDetail.Total() {
		t.Fatal("scoring stage does not equal the backend's total")
	}
	if res.Timeline.Total() < 250*time.Millisecond {
		t.Fatalf("end-to-end total %v below the process-invoke floor", res.Timeline.Total())
	}
}

func BenchmarkEndToEndQuery(b *testing.B) {
	p, _, _ := newPipeline(b, 8, 10, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='FPGA'"); err != nil {
			b.Fatal(err)
		}
	}
}
