package pipeline

import (
	"container/list"
	"fmt"
	"hash/crc32"
	"sync"

	"accelscore/internal/forest"
	"accelscore/internal/kernel"
)

// ModelCache is a concurrency-safe LRU of compiled models: the deserialized
// forest, its flat kernel form and its structural stats, keyed by model name
// plus the RFX blob's CRC32 checksum. Because the checksum is recomputed on
// every lookup, replacing a model in the models table (same name, new blob)
// invalidates its entry automatically — no write-path hook needed; the stale
// entry simply stops matching and ages out of the LRU.
//
// This is the "cache compiled execution state across queries" optimization
// of SQL+ML systems: on a hit, a scoring query skips blob deserialization,
// kernel compilation and stats computation entirely, leaving model
// pre-processing at checksum cost (the Fig. 11 "tightly integrated" story).
type ModelCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	index    map[string]*list.Element
	// inflight tracks compilations in progress so concurrent cold-start
	// queries for the same key share one compile (singleflight) instead of
	// stampeding: the first caller compiles, the rest block on done.
	inflight map[string]*compileCall

	hits, misses, evictions, coalesced uint64
}

// compileCall is one in-progress compilation that late arrivals wait on.
type compileCall struct {
	done chan struct{}
	e    *cacheEntry
	err  error
}

// cacheEntry is one cached compiled model.
type cacheEntry struct {
	key      string
	forest   *forest.Forest
	compiled *kernel.Compiled
	stats    forest.Stats
}

// DefaultModelCacheCapacity is used when NewModelCache gets capacity <= 0.
const DefaultModelCacheCapacity = 8

// NewModelCache returns an empty cache holding at most capacity models.
func NewModelCache(capacity int) *ModelCache {
	if capacity <= 0 {
		capacity = DefaultModelCacheCapacity
	}
	return &ModelCache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
		inflight: make(map[string]*compileCall),
	}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// Coalesced counts lookups that piggybacked on another query's
	// in-progress compilation instead of compiling themselves.
	Coalesced uint64
	Entries   int
}

// String renders the counters for dashboards and logs.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d coalesced=%d entries=%d",
		s.Hits, s.Misses, s.Evictions, s.Coalesced, s.Entries)
}

// Stats returns the current counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Coalesced: c.coalesced, Entries: c.ll.Len()}
}

// Len returns the number of cached models.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey derives the lookup key: model name + blob checksum + length. The
// checksum makes a replaced blob miss even under an unchanged name.
func cacheKey(name string, blob []byte) string {
	return fmt.Sprintf("%s|%08x|%d", name, crc32.ChecksumIEEE(blob), len(blob))
}

// lookup returns the entry for key, promoting it to most recently used.
func (c *ModelCache) lookup(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry), true
	}
	c.misses++
	return nil, false
}

// store inserts (or refreshes) an entry and evicts beyond capacity,
// returning how many entries were evicted so callers can publish the events.
func (c *ModelCache) store(e *cacheEntry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storeLocked(e)
}

// storeLocked is store with c.mu already held.
func (c *ModelCache) storeLocked(e *cacheEntry) int {
	if el, ok := c.index[e.key]; ok {
		// A racing query compiled the same model; keep the existing entry.
		c.ll.MoveToFront(el)
		return 0
	}
	c.index[e.key] = c.ll.PushFront(e)
	evicted := 0
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry).key)
		c.evictions++
		evicted++
	}
	return evicted
}

// GetOrCompile returns the cached entry for key, or compiles it exactly once
// even under concurrent cold-start pressure. status is "hit" (already
// cached), "miss" (this caller ran compile) or "coalesced" (another caller's
// in-progress compile was shared). A failed compile is propagated to every
// waiter and cached nothing, so the next query retries.
func (c *ModelCache) GetOrCompile(key string, compile func() (*cacheEntry, error)) (e *cacheEntry, status string, evicted int, err error) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry), "hit", 0, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-call.done
		return call.e, "coalesced", 0, call.err
	}
	c.misses++
	call := &compileCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.e, call.err = compile()

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		evicted = c.storeLocked(call.e)
	}
	c.mu.Unlock()
	close(call.done)
	return call.e, "miss", evicted, call.err
}
