package pipeline

import (
	"container/list"
	"fmt"
	"hash/crc32"
	"sync"

	"accelscore/internal/forest"
	"accelscore/internal/kernel"
)

// ModelCache is a concurrency-safe LRU of compiled models: the deserialized
// forest, its flat kernel form and its structural stats, keyed by model name
// plus the RFX blob's CRC32 checksum. Because the checksum is recomputed on
// every lookup, replacing a model in the models table (same name, new blob)
// invalidates its entry automatically — no write-path hook needed; the stale
// entry simply stops matching and ages out of the LRU.
//
// This is the "cache compiled execution state across queries" optimization
// of SQL+ML systems: on a hit, a scoring query skips blob deserialization,
// kernel compilation and stats computation entirely, leaving model
// pre-processing at checksum cost (the Fig. 11 "tightly integrated" story).
type ModelCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	index    map[string]*list.Element

	hits, misses, evictions uint64
}

// cacheEntry is one cached compiled model.
type cacheEntry struct {
	key      string
	forest   *forest.Forest
	compiled *kernel.Compiled
	stats    forest.Stats
}

// DefaultModelCacheCapacity is used when NewModelCache gets capacity <= 0.
const DefaultModelCacheCapacity = 8

// NewModelCache returns an empty cache holding at most capacity models.
func NewModelCache(capacity int) *ModelCache {
	if capacity <= 0 {
		capacity = DefaultModelCacheCapacity
	}
	return &ModelCache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// String renders the counters for dashboards and logs.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d entries=%d",
		s.Hits, s.Misses, s.Evictions, s.Entries)
}

// Stats returns the current counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}

// Len returns the number of cached models.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey derives the lookup key: model name + blob checksum + length. The
// checksum makes a replaced blob miss even under an unchanged name.
func cacheKey(name string, blob []byte) string {
	return fmt.Sprintf("%s|%08x|%d", name, crc32.ChecksumIEEE(blob), len(blob))
}

// lookup returns the entry for key, promoting it to most recently used.
func (c *ModelCache) lookup(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry), true
	}
	c.misses++
	return nil, false
}

// store inserts (or refreshes) an entry and evicts beyond capacity,
// returning how many entries were evicted so callers can publish the events.
func (c *ModelCache) store(e *cacheEntry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[e.key]; ok {
		// A racing query compiled the same model; keep the existing entry.
		c.ll.MoveToFront(el)
		return 0
	}
	c.index[e.key] = c.ll.PushFront(e)
	evicted := 0
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry).key)
		c.evictions++
		evicted++
	}
	return evicted
}
