package pipeline_test

import (
	"strings"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/pipeline"
)

// newCachedPipeline is newPipeline plus an enabled compiled-model cache.
func newCachedPipeline(t testing.TB, trees, depth, rows int) (*pipeline.Pipeline, *forest.Forest, *dataset.Dataset) {
	t.Helper()
	p, f, data := newPipeline(t, trees, depth, rows)
	p.Cache = pipeline.NewModelCache(4)
	return p, f, data
}

func TestCacheHitOnRepeatedQuery(t *testing.T) {
	p, _, _ := newCachedPipeline(t, 8, 10, 300)
	q := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"

	cold, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	warm, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second query missed the cache")
	}
	st := warm.CacheStats
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %v", st)
	}

	// Predictions must be byte-identical cold vs warm.
	for i := range cold.Predictions {
		if cold.Predictions[i] != warm.Predictions[i] {
			t.Fatalf("prediction %d differs cold vs warm", i)
		}
	}

	// The hit's model pre-processing span must be near-zero (Fig. 11
	// tightly-integrated story), far below the miss's deserialize cost.
	coldPre := cold.Timeline.Component(pipeline.StageModelPreproc)
	warmPre := warm.Timeline.Component(pipeline.StageModelPreproc)
	if warmPre <= 0 {
		t.Fatal("cache-hit model pre-processing span missing")
	}
	if warmPre*10 >= coldPre {
		t.Fatalf("cache-hit model preproc %v not near-zero vs cold %v", warmPre, coldPre)
	}
	if warm.Timeline.Total() >= cold.Timeline.Total() {
		t.Fatalf("warm simulated total %v not below cold %v",
			warm.Timeline.Total(), cold.Timeline.Total())
	}
}

// TestCachedMatchesUncachedAllCPUEngines verifies the acceptance criterion:
// cached scoring produces byte-identical predictions to the uncached path
// across every CPU engine.
func TestCachedMatchesUncachedAllCPUEngines(t *testing.T) {
	cached, _, _ := newCachedPipeline(t, 10, 10, 700)
	plain, _, _ := newPipeline(t, 10, 10, 700)
	for _, be := range []string{"CPU_SKLearn", "CPU_ONNX", "CPU_ONNX_52th"} {
		q := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='" + be + "'"
		want, err := plain.ExecQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		// Run twice so the second pass exercises the warm path.
		for pass := 0; pass < 2; pass++ {
			got, err := cached.ExecQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Predictions) != len(want.Predictions) {
				t.Fatalf("%s pass %d: %d vs %d predictions", be, pass, len(got.Predictions), len(want.Predictions))
			}
			for i := range want.Predictions {
				if got.Predictions[i] != want.Predictions[i] {
					t.Fatalf("%s pass %d: prediction %d differs", be, pass, i)
				}
			}
			// The result table is bulk-assembled; it must mirror predictions.
			if got.Table.NumRows() != len(want.Predictions) {
				t.Fatalf("%s: result table rows = %d", be, got.Table.NumRows())
			}
			for i := range want.Predictions {
				if int(got.Table.Cell(i, 0).I) != want.Predictions[i] {
					t.Fatalf("%s: result table row %d differs", be, i)
				}
			}
		}
	}
}

// TestCacheInvalidationOnModelReplace: replacing a model under the same name
// must miss (checksum re-check) and score with the new model.
func TestCacheInvalidationOnModelReplace(t *testing.T) {
	p, _, data := newCachedPipeline(t, 4, 8, 200)
	q := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"
	if _, err := p.ExecQuery(q); err != nil {
		t.Fatal(err)
	}
	if res, err := p.ExecQuery(q); err != nil || !res.CacheHit {
		t.Fatalf("warm query: hit=%v err=%v", res.CacheHit, err)
	}

	// Replace the model with a very different one (single stump).
	f2, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 1,
		Tree:     forest.TrainConfig{MaxDepth: 1},
		Seed:     99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DB.DeleteModel("iris_rf"); err != nil {
		t.Fatal(err)
	}
	if err := p.DB.StoreModel("iris_rf", f2); err != nil {
		t.Fatal(err)
	}

	res, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("stale cache entry served after model replacement")
	}
	want := f2.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("post-replacement prediction %d not from the new model", i)
		}
	}
}

// TestCacheEviction fills the LRU beyond capacity.
func TestCacheEviction(t *testing.T) {
	p, _, _ := newCachedPipeline(t, 2, 4, 100)
	p.Cache = pipeline.NewModelCache(2)
	names := []string{"m1", "m2", "m3"}
	for i, name := range names {
		f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
			NumTrees: 2,
			Tree:     forest.TrainConfig{MaxDepth: 3},
			Seed:     uint64(i + 10),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.DB.StoreModel(name, f); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ExecQuery("EXEC sp_score_model @model='" + name + "', @data='iris', @backend='CPU_ONNX'"); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Cache.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, capacity 2", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// m1 was evicted (LRU): scoring it again misses; m3 still hits.
	if res, _ := p.ExecQuery("EXEC sp_score_model @model='m1', @data='iris', @backend='CPU_ONNX'"); res.CacheHit {
		t.Fatal("evicted entry hit")
	}
	if res, _ := p.ExecQuery("EXEC sp_score_model @model='m3', @data='iris', @backend='CPU_ONNX'"); !res.CacheHit {
		t.Fatal("resident entry missed")
	}
}

// TestSnapshotCacheInvalidatedByInsert: appending rows to the scored table
// must be visible to the next query (the snapshot is version-keyed).
func TestSnapshotCacheInvalidatedByInsert(t *testing.T) {
	p, _, _ := newCachedPipeline(t, 2, 6, 50)
	q := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"
	res, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 50 {
		t.Fatalf("baseline rows = %d", len(res.Predictions))
	}
	if _, err := p.ExecQuery("INSERT INTO iris VALUES (5.1, 3.5, 1.4, 0.2, 0)"); err != nil {
		t.Fatal(err)
	}
	res, err = p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 51 {
		t.Fatalf("post-insert rows = %d, snapshot cache stale", len(res.Predictions))
	}
}

// TestLimitValidation covers the @limit fix: type errors before value
// errors.
func TestLimitValidation(t *testing.T) {
	p, _, _ := newPipeline(t, 2, 6, 100)
	_, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @limit='ten'")
	if err == nil {
		t.Fatal("string @limit accepted")
	}
	if !strings.Contains(err.Error(), "must be a number") {
		t.Fatalf("string @limit reported %q, want a type error", err)
	}
	_, err = p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @limit=0")
	if err == nil {
		t.Fatal("zero @limit accepted")
	}
	if !strings.Contains(err.Error(), "positive") {
		t.Fatalf("zero @limit reported %q, want a value error", err)
	}
}

// TestEstimateMatchesCachedMissRun: with a cache attached, a cold (miss)
// query keeps the exact baseline timeline shape.
func TestEstimateMatchesCachedMissRun(t *testing.T) {
	p, f, data := newCachedPipeline(t, 8, 10, 400)
	blob, err := p.DB.LoadModelBlob("iris_rf")
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Run(blob, data, "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := p.Estimate(f.ComputeStats(), 400, int64(len(blob)), "FPGA")
	if err != nil {
		t.Fatal(err)
	}
	if run.Timeline.Total() != est.Total() {
		t.Fatalf("cold cached Run total %v != Estimate total %v", run.Timeline.Total(), est.Total())
	}
}

// TestCacheReplaceBlobRelowersAndKeepsOldEntry extends the invalidation
// test down to the blob level: replacing the stored bytes in place (same
// model name) must make the next query miss, pay the full deserialize +
// compile cost again, and leave BOTH compiled entries resident (the stale
// one stops matching and ages out of the LRU rather than being purged).
func TestCacheReplaceBlobRelowersAndKeepsOldEntry(t *testing.T) {
	p, _, data := newCachedPipeline(t, 6, 8, 250)
	q := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX'"

	cold, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("warm query missed")
	}

	f2, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  6,
		Tree:      forest.TrainConfig{MaxDepth: 8},
		Seed:      4242, // different seed => different trees, same shape
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DB.DeleteModel("iris_rf"); err != nil {
		t.Fatal(err)
	}
	if err := p.DB.StoreModel("iris_rf", f2); err != nil {
		t.Fatal(err)
	}

	missesBefore := p.Cache.Stats().Misses
	replaced, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if replaced.CacheHit {
		t.Fatal("replaced blob served from the stale entry")
	}
	st := replaced.CacheStats
	if st.Misses != missesBefore+1 {
		t.Fatalf("misses %d -> %d, want one new miss", missesBefore, st.Misses)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d after replacement, want stale + fresh", st.Entries)
	}

	// The miss must pay full model pre-processing again (re-lowering), the
	// same order as the original cold query and far above the hit cost.
	coldPre := cold.Timeline.Component(pipeline.StageModelPreproc)
	warmPre := warm.Timeline.Component(pipeline.StageModelPreproc)
	replPre := replaced.Timeline.Component(pipeline.StageModelPreproc)
	if replPre <= warmPre*10 {
		t.Fatalf("replacement preproc %v not re-lowered (hit cost %v, cold %v)", replPre, warmPre, coldPre)
	}

	want := f2.PredictBatch(data)
	for i := range want {
		if replaced.Predictions[i] != want[i] {
			t.Fatalf("prediction %d not from the replacement model", i)
		}
	}

	// And the replacement itself is now cached.
	again, err := p.ExecQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("replacement model not cached after its miss")
	}
}
