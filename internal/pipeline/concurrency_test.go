package pipeline_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/pipeline"
)

// TestConcurrentPipeline hammers one shared Pipeline from N goroutines with
// a mix of scoring queries (cache hits), model churn (store/delete, which
// invalidates and evicts cache entries) and DDL, proving under -race that
// the compiled-model cache, the dataset snapshot cache and the shared flat
// kernel are thread-safe. Every scoring result is checked against the
// single-threaded oracle.
func TestConcurrentPipeline(t *testing.T) {
	p, f, data := newPipeline(t, 8, 10, 400)
	p.Cache = pipeline.NewModelCache(3) // small: force eviction churn

	want := f.PredictBatch(data)
	churn, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2,
		Tree:     forest.TrainConfig{MaxDepth: 4},
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 25
	backends := []string{"CPU_SKLearn", "CPU_ONNX", "CPU_ONNX_52th", "FPGA"}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0, 1:
					// Scoring the stable model: always correct.
					be := backends[(w+i)%len(backends)]
					res, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='" + be + "'")
					if err != nil {
						errs <- err
						return
					}
					for j := range want {
						if res.Predictions[j] != want[j] {
							errs <- fmt.Errorf("worker %d iter %d: prediction %d differs on %s", w, i, j, be)
							return
						}
					}
				case 2:
					// Model churn on a shared name: replace then score. Both
					// the delete and the scoring may race with other workers
					// (not-found is fine); wrong predictions are not.
					name := "churn"
					_ = p.DB.DeleteModel(name)
					_ = p.DB.StoreModel(name, churn) // duplicate store errors are fine
					res, err := p.ExecQuery("EXEC sp_score_model @model='churn', @data='iris', @backend='CPU_ONNX'")
					if err != nil {
						if strings.Contains(err.Error(), "not found") {
							continue
						}
						errs <- err
						return
					}
					if len(res.Predictions) != len(want) {
						errs <- fmt.Errorf("worker %d: churn scored %d rows", w, len(res.Predictions))
						return
					}
				case 3:
					// DDL on worker-private tables plus private-model cache
					// pressure.
					tblName := fmt.Sprintf("scratch_%d_%d", w, i)
					if _, err := p.ExecQuery("CREATE TABLE " + tblName + " (x REAL, label BIGINT)"); err != nil {
						errs <- err
						return
					}
					if _, err := p.ExecQuery("INSERT INTO " + tblName + " VALUES (1.0, 0), (2.0, 1)"); err != nil {
						errs <- err
						return
					}
					modelName := fmt.Sprintf("m_%d_%d", w, i%3)
					_ = p.DB.StoreModel(modelName, churn)
					if _, err := p.ExecQuery("EXEC sp_score_model @model='" + modelName + "', @data='iris', @backend='CPU_SKLearn'"); err != nil &&
						!strings.Contains(err.Error(), "not found") {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := p.Cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache never exercised: %v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("eviction path never exercised: %v", st)
	}
}
