package pipeline_test

import (
	"fmt"
	"sort"
	"testing"

	"accelscore/internal/pipeline"
)

func TestParsePartition(t *testing.T) {
	good := map[string]pipeline.Partition{
		"0/1":    {Index: 0, Count: 1},
		"3/4":    {Index: 3, Count: 4},
		" 1 / 2": {Index: 1, Count: 2},
	}
	for s, want := range good {
		got, err := pipeline.ParsePartition(s)
		if err != nil {
			t.Fatalf("ParsePartition(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParsePartition(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "1", "1/0", "-1/4", "4/4", "a/4", "1/b", "0/999999"} {
		if _, err := pipeline.ParsePartition(s); err == nil {
			t.Fatalf("ParsePartition(%q) accepted", s)
		}
	}
	if got := (pipeline.Partition{Index: 2, Count: 4}).String(); got != "2/4" {
		t.Fatalf("String() = %q", got)
	}
	if got := (pipeline.Partition{}).String(); got != "" {
		t.Fatalf("zero String() = %q", got)
	}
}

// TestRowShardTilesAllRows checks the assignment is total, stable, and not
// degenerate: every row lands in exactly one partition and no partition is
// starved on a realistic row count.
func TestRowShardTilesAllRows(t *testing.T) {
	const rows, n = 10000, 4
	counts := make([]int, n)
	for r := 0; r < rows; r++ {
		s := pipeline.RowShard(r, n)
		if s < 0 || s >= n {
			t.Fatalf("RowShard(%d, %d) = %d", r, n, s)
		}
		if s != pipeline.RowShard(r, n) {
			t.Fatalf("RowShard(%d, %d) not deterministic", r, n)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < rows/n/2 || c > rows/n*2 {
			t.Fatalf("partition %d holds %d of %d rows; skewed hash", i, c, rows)
		}
	}
}

// TestPartitionsUnionToSingleNode scores each of n partitions separately and
// checks that merging by scan ordinal reproduces the unpartitioned result
// bit for bit — the invariant the scale-out router's gather depends on.
func TestPartitionsUnionToSingleNode(t *testing.T) {
	p, _, data := newPipeline(t, 8, 10, 500)
	whole, err := p.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX'")
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	merged := make([]int, data.NumRecords())
	seen := make([]bool, data.NumRecords())
	for k := 0; k < n; k++ {
		res, err := p.ExecQuery(fmt.Sprintf(
			"EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX', @partition='%d/%d'", k, n))
		if err != nil {
			t.Fatal(err)
		}
		if res.Fused {
			t.Fatal("partition-only query reported Fused")
		}
		if res.RowsScanned != data.NumRecords() {
			t.Fatalf("partition %d scanned %d rows, want %d", k, res.RowsScanned, data.NumRecords())
		}
		if len(res.ScoredRows) != len(res.Predictions) {
			t.Fatalf("partition %d: %d scored rows vs %d predictions",
				k, len(res.ScoredRows), len(res.Predictions))
		}
		if !sort.IntsAreSorted(res.ScoredRows) {
			t.Fatalf("partition %d: scored rows not ascending", k)
		}
		for i, row := range res.ScoredRows {
			if pipeline.RowShard(row, n) != k {
				t.Fatalf("row %d landed in partition %d, RowShard says %d",
					row, k, pipeline.RowShard(row, n))
			}
			if seen[row] {
				t.Fatalf("row %d scored by two partitions", row)
			}
			seen[row] = true
			merged[row] = res.Predictions[i]
		}
	}
	for row, ok := range seen {
		if !ok {
			t.Fatalf("row %d scored by no partition", row)
		}
	}
	for row := range merged {
		if merged[row] != whole.Predictions[row] {
			t.Fatalf("row %d: merged %d, single-node %d", row, merged[row], whole.Predictions[row])
		}
	}
}

// TestPartitionComposesWithWhere splits a filtered query across partitions:
// the union of the partitioned, filtered results must equal the single-node
// filtered result, preserving order by scan ordinal.
func TestPartitionComposesWithWhere(t *testing.T) {
	p, _, data := newFusionPipeline(t, 400)
	where := data.FeatureNames[3] + " < 1.5"
	whole, err := p.ExecQuery(fmt.Sprintf(
		"EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX', @where='%s'", where))
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	type pred struct{ row, class int }
	var got []pred
	for k := 0; k < n; k++ {
		res, err := p.ExecQuery(fmt.Sprintf(
			"EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX', @where='%s', @partition='%d/%d'",
			where, k, n))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fused {
			t.Fatal("filtered partition query not marked fused")
		}
		for i, row := range res.ScoredRows {
			got = append(got, pred{row, res.Predictions[i]})
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].row < got[j].row })
	if len(got) != len(whole.Predictions) {
		t.Fatalf("partitions scored %d rows, single-node scored %d", len(got), len(whole.Predictions))
	}
	for i := range got {
		if got[i].row != whole.ScoredRows[i] {
			t.Fatalf("scored-row %d: merged ordinal %d, single-node %d", i, got[i].row, whole.ScoredRows[i])
		}
		if got[i].class != whole.Predictions[i] {
			t.Fatalf("scored-row %d: merged class %d, single-node %d", i, got[i].class, whole.Predictions[i])
		}
	}
}

// TestPartitionClassCountsSumToWhole checks the fused-aggregate path: the
// per-partition GROUP BY histograms must sum to the single-node histogram.
func TestPartitionClassCountsSumToWhole(t *testing.T) {
	p, f, _ := newPipeline(t, 8, 10, 400)
	whole, err := p.ExecQuery(
		"SELECT prediction, COUNT(*) FROM PREDICT(@model='iris_rf', @data='iris', @backend='CPU_ONNX') GROUP BY prediction")
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]int64, f.NumClasses)
	const n = 3
	for k := 0; k < n; k++ {
		req := &pipeline.ScoreRequest{
			Model: "iris_rf", Data: "iris", Backend: "CPU_ONNX",
			Agg: pipeline.AggGroupCount, Partition: pipeline.Partition{Index: k, Count: n},
		}
		res, err := p.ExecScore(req)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < res.Table.NumRows(); i++ {
			cls := res.Table.Rows()[i][0].I
			cnt := res.Table.Rows()[i][1].I
			sum[cls] += cnt
		}
	}
	for i := 0; i < whole.Table.NumRows(); i++ {
		cls := int(whole.Table.Rows()[i][0].I)
		cnt := whole.Table.Rows()[i][1].I
		if sum[cls] != cnt {
			t.Fatalf("class %d: partitions sum to %d, single-node %d", cls, sum[cls], cnt)
		}
	}
}

// TestPartitionFusionKeySeparation guards the coalescing invariant: two
// partitions of the same query must have different fusion keys, and the
// same partition twice must share one.
func TestPartitionFusionKeySeparation(t *testing.T) {
	base := pipeline.ScoreRequest{Model: "m", Data: "t"}
	a, b, c := base, base, base
	a.Partition = pipeline.Partition{Index: 0, Count: 2}
	b.Partition = pipeline.Partition{Index: 1, Count: 2}
	c.Partition = pipeline.Partition{Index: 0, Count: 2}
	if a.FusionKey() == b.FusionKey() {
		t.Fatal("distinct partitions share a fusion key")
	}
	if a.FusionKey() != c.FusionKey() {
		t.Fatal("identical partitions have different fusion keys")
	}
	if base.FusionKey() != "" {
		t.Fatalf("unpartitioned key = %q", base.FusionKey())
	}
	if a.FusionKey() == base.FusionKey() {
		t.Fatal("partitioned query coalescible with unpartitioned")
	}
}
