package pipeline_test

import (
	"testing"

	"accelscore/internal/pipeline"
)

// TestExecScoreBatchAmortizesOverheads scores three requests over the same
// model as one coalesced batch and checks the overhead-amortization
// arithmetic: one cache probe, fixed stages split by the batch size,
// row-proportional stages split by row share, and the prediction fan-out
// matching the serialized per-query results exactly.
func TestExecScoreBatchAmortizesOverheads(t *testing.T) {
	p, f, data := newPipeline(t, 8, 10, 300)
	p.Cache = pipeline.NewModelCache(4)
	want := f.PredictBatch(data)

	limits := []int{50, 100, 150}
	reqs := make([]*pipeline.ScoreRequest, len(limits))
	for i, n := range limits {
		reqs[i] = &pipeline.ScoreRequest{Model: "iris_rf", Data: "iris", Backend: "CPU_SKLearn", Limit: n}
	}
	results, err := p.ExecScoreBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(limits) {
		t.Fatalf("got %d results for %d requests", len(results), len(limits))
	}
	total := 0
	for _, n := range limits {
		total += n
	}
	var invokeSum int64
	for i, res := range results {
		if res.BatchSize != len(limits) {
			t.Fatalf("result %d: BatchSize = %d", i, res.BatchSize)
		}
		if len(res.Predictions) != limits[i] {
			t.Fatalf("result %d: %d predictions, want %d", i, len(res.Predictions), limits[i])
		}
		for j, pr := range res.Predictions {
			if pr != want[j] {
				t.Fatalf("result %d: prediction %d = %d, want %d", i, j, pr, want[j])
			}
		}
		// Fixed overheads divide by the batch size...
		if got, exp := res.Timeline.Component(pipeline.StagePythonInvocation),
			p.Runtime.ProcessInvoke/3; got != exp {
			t.Fatalf("result %d: invocation %v, want %v", i, got, exp)
		}
		invokeSum += int64(res.Timeline.Component(pipeline.StagePythonInvocation))
		// ...while scoring scales with the row share: the 150-row query
		// must be charged 3x the 50-row query.
		if i > 0 {
			small := results[0].Timeline.Component(pipeline.StageModelScoring)
			cur := res.Timeline.Component(pipeline.StageModelScoring)
			ratio := float64(cur) / float64(small)
			wantRatio := float64(limits[i]) / float64(limits[0])
			if ratio < wantRatio*0.99 || ratio > wantRatio*1.01 {
				t.Fatalf("result %d: scoring share ratio %.3f, want ~%.2f", i, ratio, wantRatio)
			}
		}
	}
	if st := p.Cache.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("batch probed cache more than once: %v", st)
	}

	// The batch reloads nothing per query: a second identical batch hits.
	if _, err := p.ExecScoreBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if st := p.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("second batch should hit: %v", st)
	}
}

// TestExecScoreBatchRejectsMixedKeys: a batch mixing models (or backends)
// is a programming error in the coalescer and must fail loudly.
func TestExecScoreBatchRejectsMixedKeys(t *testing.T) {
	p, _, _ := newPipeline(t, 4, 6, 60)
	_, err := p.ExecScoreBatch([]*pipeline.ScoreRequest{
		{Model: "iris_rf", Data: "iris", Backend: "CPU_SKLearn"},
		{Model: "iris_rf", Data: "iris", Backend: "FPGA"},
	})
	if err == nil {
		t.Fatal("mixed-backend batch did not fail")
	}
}

// TestBatchOfOneMatchesSingleQuery: the batch path with one request must be
// indistinguishable from the classic ExecQuery path — same predictions,
// same simulated timeline, stage by stage.
func TestBatchOfOneMatchesSingleQuery(t *testing.T) {
	p1, _, _ := newPipeline(t, 8, 10, 200)
	p2, _, _ := newPipeline(t, 8, 10, 200)
	single, err := p1.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p2.ExecScore(&pipeline.ScoreRequest{Model: "iris_rf", Data: "iris", Backend: "CPU_SKLearn"})
	if err != nil {
		t.Fatal(err)
	}
	if batch.BatchSize != 1 {
		t.Fatalf("BatchSize = %d", batch.BatchSize)
	}
	ss, bs := single.Timeline.Spans(), batch.Timeline.Spans()
	if len(ss) != len(bs) {
		t.Fatalf("span count %d vs %d", len(ss), len(bs))
	}
	for i := range ss {
		if ss[i] != bs[i] {
			t.Fatalf("span %d: %+v vs %+v", i, ss[i], bs[i])
		}
	}
	for j := range single.Predictions {
		if single.Predictions[j] != batch.Predictions[j] {
			t.Fatalf("prediction %d differs", j)
		}
	}
}
