// Row partitioning for the scale-out serving tier: a scoring query may carry
// a @partition = 'k/n' parameter that restricts scoring to the k-th of n
// hash partitions of the scanned rows. Every shard in a scatter-gather
// deployment holds the same (replicated) table, so the partition is purely a
// parallelism device: the router fans one query out as n sub-queries, one
// partition each, and the union of the partitions is exactly the
// unpartitioned row set. The assignment hashes the stable row ordinal (the
// scan position after @limit pushdown, identical on every replica), so the
// router can recompute it locally and any shard can serve any partition.
package pipeline

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"accelscore/internal/dataset"
	"accelscore/internal/kernel"
)

// MaxPartitions bounds the fan-out width a single query may request.
const MaxPartitions = 4096

// Partition identifies one hash partition of a query's scanned rows.
// The zero value means "no partitioning": every row is scored.
type Partition struct {
	// Index is the partition ordinal in [0, Count).
	Index int
	// Count is the total number of partitions (0 = unpartitioned).
	Count int
}

// Active reports whether the request is restricted to one partition.
// Count == 1 still counts as active: '0/1' selects every row but keeps the
// request from coalescing with unpartitioned queries, so a router running
// with one shard behaves exactly like a router running with many.
func (p Partition) Active() bool { return p.Count > 0 }

// String renders the canonical 'k/n' spec ("" when unpartitioned).
func (p Partition) String() string {
	if !p.Active() {
		return ""
	}
	return strconv.Itoa(p.Index) + "/" + strconv.Itoa(p.Count)
}

// ParsePartition parses a 'k/n' partition spec.
func ParsePartition(s string) (Partition, error) {
	k, n, ok := strings.Cut(s, "/")
	if !ok {
		return Partition{}, fmt.Errorf("pipeline: @partition must be 'k/n', got %q", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(k))
	if err != nil {
		return Partition{}, fmt.Errorf("pipeline: @partition index: %v", err)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return Partition{}, fmt.Errorf("pipeline: @partition count: %v", err)
	}
	if cnt < 1 || cnt > MaxPartitions {
		return Partition{}, fmt.Errorf("pipeline: @partition count must be in [1, %d], got %d", MaxPartitions, cnt)
	}
	if idx < 0 || idx >= cnt {
		return Partition{}, fmt.Errorf("pipeline: @partition index %d outside [0, %d)", idx, cnt)
	}
	return Partition{Index: idx, Count: cnt}, nil
}

// FNV-1a 64-bit constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// RowShard maps a stable row ordinal to its partition index under an n-way
// split: FNV-1a over the little-endian ordinal bytes, mod n. Exported so the
// router (and tests) can recompute the assignment without a selection.
func RowShard(row, n int) int {
	h := uint64(fnvOffset64)
	v := uint64(row)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return int(h % uint64(n))
}

// TenantShard maps a tenant key to a shard index: FNV-1a over the key bytes.
// Tenant-affinity routing sends the whole query to one shard instead of
// splitting it, trading parallelism for cache locality.
func TenantShard(tenant string, n int) int {
	h := uint64(fnvOffset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// Keep reports whether the given stable row ordinal belongs to partition p.
func (p Partition) Keep(row int) bool {
	return RowShard(row, p.Count) == p.Index
}

// partitionSelection narrows base (the pushed-down WHERE selection, nil =
// all rows) to the rows of one hash partition. Ordinals are per request:
// merged row r inside request i's block maps to the local scan ordinal
// r - offset(i), so a coalesced batch partitions each sub-query's rows
// exactly as the same sub-query would partition alone.
func partitionSelection(base *kernel.Selection, part Partition, datas []*dataset.Dataset) *kernel.Selection {
	total := 0
	ends := make([]int, len(datas))
	for i, d := range datas {
		total += d.NumRecords()
		ends[i] = total
	}
	return kernel.SelectionFromFunc(total, func(row int) bool {
		if base != nil && !base.Selected(row) {
			return false
		}
		i := sort.SearchInts(ends, row+1)
		off := 0
		if i > 0 {
			off = ends[i-1]
		}
		return part.Keep(row - off)
	})
}
