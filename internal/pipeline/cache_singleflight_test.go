package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestModelCacheSingleflight gates a compile behind channels and proves
// that N concurrent cold lookups for one key run the compile exactly once:
// one miss, N-1 coalesced waiters, everyone getting the same entry.
func TestModelCacheSingleflight(t *testing.T) {
	c := NewModelCache(4)
	const n = 6
	entered := make(chan struct{})
	release := make(chan struct{})
	compiles := 0
	leaderEntry := &cacheEntry{key: "k"}

	var wg sync.WaitGroup
	statuses := make([]string, n)
	entries := make([]*cacheEntry, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, st, _, err := c.GetOrCompile("k", func() (*cacheEntry, error) {
			entered <- struct{}{}
			<-release
			compiles++
			return leaderEntry, nil
		})
		if err != nil {
			t.Error(err)
		}
		statuses[0], entries[0] = st, e
	}()
	<-entered // leader is inside compile; the key is inflight

	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, st, _, err := c.GetOrCompile("k", func() (*cacheEntry, error) {
				return nil, fmt.Errorf("second compile ran")
			})
			if err != nil {
				t.Error(err)
			}
			statuses[i], entries[i] = st, e
		}(i)
	}
	// Wait until every follower is parked on the inflight call, then let
	// the leader finish.
	for i := 0; c.Stats().Coalesced != n-1; i++ {
		if i > 5000 {
			t.Fatalf("followers never coalesced: %v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if compiles != 1 {
		t.Fatalf("compile ran %d times", compiles)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("stats = %v", st)
	}
	miss, coalesced := 0, 0
	for i, s := range statuses {
		if entries[i] != leaderEntry {
			t.Fatalf("caller %d got a different entry", i)
		}
		switch s {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("caller %d status %q", i, s)
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Fatalf("statuses = %v", statuses)
	}
	// The stored entry now serves plain hits.
	if _, s, _, _ := c.GetOrCompile("k", nil); s != "hit" {
		t.Fatalf("post-singleflight status = %q", s)
	}
}

// TestModelCacheSingleflightError: a failed compile propagates to every
// waiter, caches nothing, and the next lookup retries.
func TestModelCacheSingleflightError(t *testing.T) {
	c := NewModelCache(4)
	entered := make(chan struct{})
	release := make(chan struct{})
	compileErr := fmt.Errorf("corrupt blob")

	var wg sync.WaitGroup
	var leaderErr, followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, leaderErr = c.GetOrCompile("bad", func() (*cacheEntry, error) {
			entered <- struct{}{}
			<-release
			return nil, compileErr
		})
	}()
	<-entered
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, followerErr = c.GetOrCompile("bad", nil)
	}()
	for i := 0; c.Stats().Coalesced != 1; i++ {
		if i > 5000 {
			t.Fatalf("follower never coalesced: %v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if leaderErr != compileErr || followerErr != compileErr {
		t.Fatalf("errors = %v / %v, want both %v", leaderErr, followerErr, compileErr)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed compile cached an entry: %v", st)
	}
	// Retry is a fresh miss.
	_, s, _, err := c.GetOrCompile("bad", func() (*cacheEntry, error) {
		return &cacheEntry{key: "bad"}, nil
	})
	if err != nil || s != "miss" {
		t.Fatalf("retry: status %q err %v", s, err)
	}
}
