package router

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/exec"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
)

// Config tunes a Router.
type Config struct {
	// Backends are the shard replicas, one per partition index.
	Backends []Backend
	// BreakerThreshold and BreakerCooldown tune the per-shard circuit
	// breakers (zero values take the dispatcher defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// AllowPartial degrades a query with unreachable partitions to an
	// explicit partial result (Merged.Partial=true, missing partitions
	// listed) instead of failing it. Predictions for missing partitions
	// are absent, never zero-filled.
	AllowPartial bool
	// Obs receives router metrics and per-query traces (nil disables).
	Obs *obs.Observer
	// WarmModels are fanned out to every shard's model cache at
	// construction (replica-aware warm-on-register).
	WarmModels []string
	// WarmTimeout bounds the construction-time warm fan-out (default 10s).
	WarmTimeout time.Duration
	// Health tunes the shard health state machine (nil takes defaults).
	// The state machine always runs on passive per-request signals;
	// active /healthz probing engages only when Health.ProbeInterval > 0.
	Health *HealthConfig
	// Hedge enables tail-latency hedging (nil disables; a non-nil zero
	// value takes the defaults).
	Hedge *HedgeConfig
	// Admission enables router admission control (nil disables).
	Admission *AdmissionConfig
}

// HedgeConfig tunes tail-latency hedging. Zero values take the noted
// defaults.
type HedgeConfig struct {
	// Disabled turns hedging off even when the config is present.
	Disabled bool
	// MaxFraction caps hedges as a fraction of dispatched sub-queries
	// (default 0.05 — at most ~5% of requests hedge).
	MaxFraction float64
	// Burst is the hedge token-bucket depth (default 4).
	Burst int
	// MinDelay floors the adaptive trigger (default 2ms) so network
	// micro-jitter can't hedge everything.
	MinDelay time.Duration
	// MinSamples is how many latency observations a shard needs before
	// hedging engages for it (default 8).
	MinSamples int
}

func (c *HedgeConfig) fill() {
	if c.MaxFraction <= 0 {
		c.MaxFraction = 0.05
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 2 * time.Millisecond
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
}

// Router scatters scoring queries across shard replicas and gathers the
// results. Safe for concurrent use.
type Router struct {
	cfg     Config
	disp    *exec.Dispatcher
	metrics *obs.RouterMetrics
	tracer  *obs.Tracer
	health  *HealthManager
	adm     *admission
	lat     *latencyTracker
	// reroutes counts partitions routed away from each preferred shard
	// (the /healthz per-shard ledger).
	reroutes []atomic.Uint64
}

// New builds a router over cfg.Backends and, when cfg.WarmModels is set,
// warms every shard's model cache before returning (warm failures are
// reported in the error but do not fail construction — a cold shard is
// slower, not wrong).
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no shard backends")
	}
	n := len(cfg.Backends)
	r := &Router{cfg: cfg, lat: newLatencyTracker(n), reroutes: make([]atomic.Uint64, n)}
	if cfg.Obs != nil {
		r.metrics = obs.NewRouterMetrics(cfg.Obs.Metrics())
		r.tracer = cfg.Obs.Tracer
		for i := range cfg.Backends {
			r.metrics.SetBreakerState(i, 0)
			r.metrics.SetShardState(i, int(ShardHealthy))
		}
	}

	// Health state machine: always on for passive signals; the active
	// probe loop runs only when a probe interval is configured.
	hcfg := HealthConfig{}
	if cfg.Health != nil {
		hcfg = *cfg.Health
	}
	r.health = NewHealthManager(n, hcfg,
		func(ctx context.Context, i int) error { return cfg.Backends[i].Healthz(ctx) },
		r.warmShard,
		func(i int, s ShardState) { r.metrics.SetShardState(i, int(s)) },
	)

	dcfg := exec.DispatcherConfig{
		Shards:           n,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		Gate:             r.health,
	}
	if cfg.Hedge != nil && !cfg.Hedge.Disabled {
		hc := *cfg.Hedge
		hc.fill()
		dcfg.Hedge = &exec.HedgePolicy{
			Delay: func(shard int) time.Duration {
				p := r.lat.p95(shard, hc.MinSamples)
				if p <= 0 {
					return 0
				}
				if p < hc.MinDelay {
					p = hc.MinDelay
				}
				return p
			},
			Budget:    exec.NewHedgeBudget(hc.MaxFraction, hc.Burst),
			Healthy:   r.health.IsHealthy,
			Compare:   compareResults,
			OnOutcome: func(o string) { r.metrics.NoteHedge(o) },
		}
	}
	disp, err := exec.NewDispatcher(dcfg)
	if err != nil {
		return nil, err
	}
	r.disp = disp
	r.adm = newAdmission(cfg.Admission, n, func(class string) { r.metrics.NoteAdmissionShed(class) })

	if len(cfg.WarmModels) > 0 {
		to := cfg.WarmTimeout
		if to <= 0 {
			to = 10 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), to)
		defer cancel()
		for _, model := range cfg.WarmModels {
			r.Warm(ctx, model)
		}
	}
	r.health.Start()
	return r, nil
}

// Close stops the health prober (and any in-flight rejoin warms). The
// router must not serve queries after Close.
func (r *Router) Close() { r.health.Close() }

// warmShard re-warms one shard's model cache (the warm-first half of a
// quarantined shard's rejoin).
func (r *Router) warmShard(ctx context.Context, i int) {
	for _, model := range r.cfg.WarmModels {
		status, err := r.cfg.Backends[i].Warm(ctx, model)
		if err != nil {
			r.metrics.NoteWarm("error")
		} else {
			r.metrics.NoteWarm(status)
		}
	}
}

// Health exposes the shard health state machine (for /healthz and the
// chaos harness).
func (r *Router) Health() *HealthManager { return r.health }

// RerouteCount returns how many partitions have been routed away from
// shard i (their preferred shard).
func (r *Router) RerouteCount(i int) uint64 { return r.reroutes[i].Load() }

// AdmissionStats snapshots the per-class admission ledger (nil when
// admission control is disabled).
func (r *Router) AdmissionStats() []AdmissionStats { return r.adm.Stats() }

// PredictedLatency is the admission controller's EWMA-predicted query
// latency (0 when admission is disabled or unmeasured).
func (r *Router) PredictedLatency() time.Duration { return r.adm.predicted() }

// Shards returns the scatter width.
func (r *Router) Shards() int { return len(r.cfg.Backends) }

// ShardStates returns each shard's circuit state name.
func (r *Router) ShardStates() []string {
	out := make([]string, r.Shards())
	for i := range out {
		out[i] = r.disp.ShardStateName(i)
	}
	return out
}

// WarmStatus is one shard's outcome of a warm fan-out.
type WarmStatus struct {
	Shard  string `json:"shard"`
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Warm fans a model-cache warm to every shard concurrently so the first
// scoring query finds the compiled model resident everywhere (a cold cache
// on ONE replica would stall the whole gather behind that straggler).
func (r *Router) Warm(ctx context.Context, model string) []WarmStatus {
	out := make([]WarmStatus, r.Shards())
	done := make(chan int, r.Shards())
	for i, b := range r.cfg.Backends {
		go func(i int, b Backend) {
			out[i].Shard = b.ID()
			status, err := b.Warm(ctx, model)
			if err != nil {
				out[i].Error = err.Error()
				r.metrics.NoteWarm("error")
			} else {
				out[i].Status = status
				r.metrics.NoteWarm(status)
			}
			done <- i
		}(i, b)
	}
	for range r.cfg.Backends {
		<-done
	}
	return out
}

// QueryOptions modifies one routed query.
type QueryOptions struct {
	// Tenant, when non-empty, engages tenant affinity: the whole query
	// (unpartitioned) routes to the tenant's home shard — FNV over the
	// tenant key — keeping that tenant's model cache and breaker history
	// on one replica. Failures still reroute to other shards.
	Tenant string
	// Class is the query's SLO priority class for admission control
	// (see AdmissionConfig.Classes; unknown or empty classes get the
	// lowest priority). Ignored when admission is disabled.
	Class string
}

// Query parses sql ONCE, scatters it as one sub-query per hash partition
// (or one tenant-affine sub-query), and merges the shard results into a
// single result bit-identical to a single-node run of the same statement.
func (r *Router) Query(ctx context.Context, sql string, opts QueryOptions) (*Merged, error) {
	req, err := parseScoringSQL(sql)
	if err != nil {
		return nil, err
	}
	return r.Score(ctx, req, opts)
}

// parseScoringSQL accepts the two scoring forms (EXEC sp_score_model and
// SELECT ... FROM PREDICT(...)) and rejects everything else: the router is
// a scoring tier, not a general SQL proxy.
func parseScoringSQL(sql string) (*pipeline.ScoreRequest, error) {
	st, err := db.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *db.ExecStmt:
		if !strings.EqualFold(s.Proc, pipeline.ScoreProcName) {
			return nil, fmt.Errorf("router: only %s is routable, got EXEC %s", pipeline.ScoreProcName, s.Proc)
		}
		return pipeline.ParseScoreParams(s)
	case *db.PredictStmt:
		return pipeline.ParsePredictStmt(s)
	default:
		return nil, fmt.Errorf("router: only scoring statements are routable")
	}
}

// Score scatters a validated scoring request. req.Partition must be zero:
// partitioning is the router's job.
func (r *Router) Score(ctx context.Context, req *pipeline.ScoreRequest, opts QueryOptions) (merged *Merged, err error) {
	if req.Partition.Active() {
		return nil, fmt.Errorf("router: request already partitioned (%s); the router assigns partitions",
			req.Partition)
	}
	// Admission control: capacity, priority-class, and deadline shedding
	// happen HERE, before any shard sees the query.
	qStart := time.Now()
	release, aerr := r.adm.Admit(ctx, opts.Class)
	if aerr != nil {
		return nil, aerr
	}
	defer func() { release(err == nil, time.Since(qStart)) }()

	n := r.Shards()
	var parts []pipeline.Partition
	switch {
	case opts.Tenant != "":
		// Tenant affinity: one unpartitioned sub-query preferring the
		// tenant's home shard (Partition.Count=0 scores every row; the
		// dispatcher's preferred shard is Index % n).
		parts = []pipeline.Partition{{Index: pipeline.TenantShard(opts.Tenant, n)}}
	case n == 1:
		parts = []pipeline.Partition{{}}
	default:
		parts = make([]pipeline.Partition, n)
		for k := range parts {
			parts[k] = pipeline.Partition{Index: k, Count: n}
		}
	}

	tr := r.tracer.Start("router " + req.Model)
	defer tr.Finish()
	tr.SetAttr("model", req.Model)
	tr.SetAttr("shards", fmt.Sprint(n))
	tr.SetAttr("scatter_width", fmt.Sprint(len(parts)))
	if opts.Tenant != "" {
		tr.SetAttr("tenant", opts.Tenant)
	}

	base := WireRequest(req)
	dres := r.disp.Scatter(ctx, parts, func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
		slot, serr := r.adm.acquireShard(ctx, shard)
		if serr != nil {
			// A saturated shard fast-fails (rerouteable): the dispatcher
			// moves the partition to a less loaded replica.
			return nil, serr
		}
		defer slot()
		lane := fmt.Sprintf("shard %d", shard)
		name := "sub-query"
		if exec.IsHedgeAttempt(ctx) {
			name = "hedge"
		}
		if part.Active() {
			name += " " + part.String()
		}
		end := tr.StartSpanOn(lane, name)
		defer end()
		wreq := base
		wreq.Partition = part.String()
		return r.cfg.Backends[shard].Score(ctx, wreq)
	})

	// Telemetry: per-shard latency/reroutes, breaker states, straggler gap.
	var minLat, maxLat time.Duration
	reroutes, hedges, hedgeWins := 0, 0, 0
	for i, d := range dres {
		r.metrics.ObserveShard(d.Shard, d.Latency, d.Reroutes)
		reroutes += d.Reroutes
		if d.Reroutes > 0 {
			r.reroutes[d.Part.Index%n].Add(uint64(d.Reroutes))
		}
		if d.Hedged {
			hedges++
			if d.HedgeWon {
				hedgeWins++
			}
		}
		if d.Err == nil {
			r.lat.note(d.Shard, d.Latency)
			if i == 0 || d.Latency < minLat {
				minLat = d.Latency
			}
			if d.Latency > maxLat {
				maxLat = d.Latency
			}
		}
	}
	for i := 0; i < n; i++ {
		r.metrics.SetBreakerState(i, r.disp.ShardState(i))
	}
	gap := maxLat - minLat
	if gap < 0 {
		gap = 0
	}
	tr.SetAttr("straggler_gap", gap.String())

	// A query-level error (unknown model, malformed filter) fails
	// identically on every replica: surface it as the query's own error,
	// never as a partial result.
	for _, d := range dres {
		if exec.IsNoReroute(d.Err) {
			r.metrics.ObserveQuery("error", len(parts), gap)
			tr.SetAttr("error", d.Err.Error())
			return nil, d.Err
		}
	}

	pe := exec.Partial(dres)
	if pe != nil && (!r.cfg.AllowPartial || len(pe.Missing) == len(parts)) {
		r.metrics.ObserveQuery("error", len(parts), gap)
		tr.SetAttr("error", pe.Error())
		// Unwrap a single-partition scatter's sole failure so callers see
		// the shard's own error classification.
		if len(parts) == 1 {
			return nil, dres[0].Err
		}
		return nil, pe
	}

	byPart := make([]*Result, len(parts))
	latencies := make([]time.Duration, len(parts))
	for i, d := range dres {
		if d.Err != nil {
			continue
		}
		res, ok := d.Value.(*Result)
		if !ok || res == nil {
			r.metrics.ObserveQuery("error", len(parts), gap)
			return nil, fmt.Errorf("router: shard %d returned no result", d.Shard)
		}
		byPart[i] = res
		latencies[i] = d.Latency
	}
	merged, err = Merge(req.Agg, byPart)
	if err != nil {
		r.metrics.ObserveQuery("error", len(parts), gap)
		tr.SetAttr("error", err.Error())
		return nil, err
	}
	merged.StragglerGap = gap
	merged.ShardLatency = latencies
	merged.Reroutes = reroutes
	merged.Hedges = hedges
	merged.HedgeWins = hedgeWins
	merged.TraceID = tr.ID()
	outcome := "ok"
	if merged.Partial {
		outcome = "partial"
	}
	r.metrics.ObserveQuery(outcome, len(parts), gap)
	tr.SetAttr("outcome", outcome)
	return merged, nil
}
