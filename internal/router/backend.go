package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/pipeline"
)

// Backend is one shard replica the router can scatter to. Implementations
// classify query-level failures (ones that would fail identically on every
// replica) by wrapping them with exec.NoReroute; every other error is
// treated as the shard's fault and triggers rerouting plus breaker
// accounting.
type Backend interface {
	// ID names the shard for logs, metrics and merged results.
	ID() string
	// Score runs one sub-query (already partitioned) on the shard.
	Score(ctx context.Context, req Request) (*Result, error)
	// Warm pre-loads a model into the shard's compiled-model cache,
	// returning the cache status ("hit", "miss" or "nocache").
	Warm(ctx context.Context, model string) (string, error)
	// Healthz probes shard liveness.
	Healthz(ctx context.Context) error
}

// Local is an in-process shard over a pipeline — the HTTP-free path the
// conformance scale-out leg and the merge tests drive, so scatter/merge
// correctness is separable from transport concerns.
type Local struct {
	Name string
	Pipe *pipeline.Pipeline
}

// ID implements Backend.
func (l *Local) ID() string { return l.Name }

// Score implements Backend by executing directly on the wrapped pipeline.
func (l *Local) Score(ctx context.Context, req Request) (*Result, error) {
	sreq, err := req.ScoreRequest()
	if err != nil {
		return nil, exec.NoReroute(err)
	}
	results, err := l.Pipe.ExecScoreBatchCtx(ctx, []*pipeline.ScoreRequest{sreq})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		// Pipeline errors are query-level (unknown model/table, bad
		// filter): identical on every data-symmetric replica.
		return nil, exec.NoReroute(err)
	}
	return WireResult(l.Name, sreq.Agg, results[0])
}

// Warm implements Backend.
func (l *Local) Warm(ctx context.Context, model string) (string, error) {
	return l.Pipe.WarmModel(model)
}

// Healthz implements Backend; an in-process pipeline is always live.
func (l *Local) Healthz(ctx context.Context) error { return nil }

// SharedTransport builds the tuned http.Transport every router/loadgen
// client must share: connection reuse sized to the worker population so a
// closed-loop load never thrashes TCP handshakes (the default transport
// keeps only 2 idle conns per host and silently serializes reconnects).
func SharedTransport(maxPerHost int) *http.Transport {
	if maxPerHost < 2 {
		maxPerHost = 2
	}
	return &http.Transport{
		MaxIdleConns:        4 * maxPerHost,
		MaxIdleConnsPerHost: maxPerHost,
		IdleConnTimeout:     90 * time.Second,
	}
}

// HTTPShard is a shard reached over its serve process's /score endpoint.
type HTTPShard struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPShard builds a shard backend for baseURL ("http://host:port").
// client may be nil; pass one http.Client (with SharedTransport) shared by
// every shard so connection pools are reused.
func NewHTTPShard(name, baseURL string, client *http.Client) (*HTTPShard, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("router: bad shard URL %q", baseURL)
	}
	if client == nil {
		client = &http.Client{Transport: SharedTransport(16), Timeout: 120 * time.Second}
	}
	return &HTTPShard{name: name, base: strings.TrimRight(u.String(), "/"), client: client}, nil
}

// ID implements Backend.
func (s *HTTPShard) ID() string { return s.name }

// Score implements Backend by POSTing the wire request to /score.
func (s *HTTPShard) Score(ctx context.Context, req Request) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, exec.NoReroute(err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/score", bytes.NewReader(body))
	if err != nil {
		return nil, exec.NoReroute(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("router: shard %s: %w", s.name, err)
	}
	defer resp.Body.Close()
	var res Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&res); err != nil {
		return nil, fmt.Errorf("router: shard %s: decoding /score response (HTTP %d): %w",
			s.name, resp.StatusCode, err)
	}
	if res.Error != "" {
		err := fmt.Errorf("router: shard %s: %s", s.name, res.Error)
		if res.Code == CodeBadRequest {
			// The query would fail the same way on every replica.
			return nil, exec.NoReroute(err)
		}
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: shard %s: HTTP %d from /score", s.name, resp.StatusCode)
	}
	return &res, nil
}

// warmResponse is the /warm JSON payload shared by serve and the router.
type warmResponse struct {
	Model  string `json:"model"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// Warm implements Backend via the shard's /warm endpoint.
func (s *HTTPShard) Warm(ctx context.Context, model string) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		s.base+"/warm?model="+url.QueryEscape(model), nil)
	if err != nil {
		return "", err
	}
	resp, err := s.client.Do(hreq)
	if err != nil {
		return "", fmt.Errorf("router: warming shard %s: %w", s.name, err)
	}
	defer resp.Body.Close()
	var wr warmResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wr); err != nil {
		return "", fmt.Errorf("router: shard %s: decoding /warm response: %w", s.name, err)
	}
	if wr.Error != "" {
		return "", errors.New(wr.Error)
	}
	return wr.Status, nil
}

// Healthz implements Backend via the shard's /healthz endpoint.
func (s *HTTPShard) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: shard %s: healthz HTTP %d", s.name, resp.StatusCode)
	}
	return nil
}
