package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"accelscore/internal/exec"
)

// QueryResponse is the /query JSON envelope: the merged scatter result or
// an error.
type QueryResponse struct {
	OK          bool    `json:"ok"`
	Error       string  `json:"error,omitempty"`
	Backend     string  `json:"backend,omitempty"`
	Predictions []int   `json:"predictions,omitempty"`
	ScoredRows  []int   `json:"scored_rows,omitempty"`
	ClassCounts []int64 `json:"class_counts,omitempty"`
	RowsScanned int     `json:"rows_scanned,omitempty"`
	RowsScored  int     `json:"rows_scored,omitempty"`
	CacheHit    bool    `json:"cache_hit"`
	// Partial marks an explicit partial result; MissingPartitions lists
	// the hash partitions whose rows are absent (never zero-filled).
	Partial           bool  `json:"partial"`
	MissingPartitions []int `json:"missing_partitions,omitempty"`
	Shards            int   `json:"shards"`
	Reroutes          int   `json:"reroutes,omitempty"`
	Hedges            int   `json:"hedges,omitempty"`
	HedgeWins         int   `json:"hedge_wins,omitempty"`
	StragglerGapNS    int64 `json:"straggler_gap_ns"`
	// SimTotalNS is the merged simulated timeline total (per-stage max
	// across shards — the gather critical path).
	SimTotalNS int64      `json:"sim_total_ns"`
	Timeline   []WireSpan `json:"timeline,omitempty"`
	TraceID    string     `json:"trace_id,omitempty"`
}

// Handler serves the router's HTTP surface: /query, /warm, /healthz,
// /metrics, /debug/queries and /debug/trace/<id>.
func Handler(r *Router) http.Handler {
	h := &handler{r: r}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/warm", h.handleWarm)
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/debug/queries", h.handleDebugQueries)
	mux.HandleFunc("/debug/trace/", h.handleDebugTrace)
	return mux
}

type handler struct {
	r *Router
}

// handleQuery routes one scoring statement from ?sql= (GET) or the request
// body (POST). ?tenant= engages tenant-affine routing.
func (h *handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("sql")
	if sql == "" && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "reading body: " + err.Error()})
			return
		}
		sql = strings.TrimSpace(string(body))
	}
	if sql == "" {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "no statement: pass ?sql= or a POST body"})
		return
	}
	ctx := r.Context()
	if tmo := r.URL.Query().Get("timeout"); tmo != "" {
		d, err := time.ParseDuration(tmo)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad ?timeout=: " + tmo})
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	opts := QueryOptions{
		Tenant: r.URL.Query().Get("tenant"),
		Class:  r.URL.Query().Get("class"),
	}
	merged, err := h.r.Query(ctx, sql, opts)
	if err != nil {
		var se *ShedError
		if errors.As(err, &se) {
			// Admission shed: tell the client when to come back.
			secs := int(se.RetryAfter / time.Second)
			if se.RetryAfter%time.Second != 0 || secs < 1 {
				secs++
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusServiceUnavailable, QueryResponse{Error: err.Error()})
			return
		}
		writeJSON(w, statusFor(ctx, err), QueryResponse{Error: err.Error()})
		return
	}
	resp := QueryResponse{
		OK:                true,
		Backend:           merged.Backend,
		Predictions:       merged.Predictions,
		ScoredRows:        merged.ScoredRows,
		ClassCounts:       merged.ClassCounts,
		RowsScanned:       merged.RowsScanned,
		RowsScored:        merged.RowsScored,
		CacheHit:          merged.CacheHit,
		Partial:           merged.Partial,
		MissingPartitions: merged.MissingPartitions,
		Shards:            merged.Shards,
		Reroutes:          merged.Reroutes,
		Hedges:            merged.Hedges,
		HedgeWins:         merged.HedgeWins,
		StragglerGapNS:    int64(merged.StragglerGap),
		SimTotalNS:        int64(merged.Timeline.Total()),
		Timeline:          wireSpans(&merged.Timeline),
		TraceID:           merged.TraceID,
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps a routing error to its HTTP status, mirroring serve's
// /query mapping so clients see consistent codes through either tier.
func statusFor(ctx context.Context, err error) int {
	var pe *exec.PartialError
	switch {
	case errors.As(err, &pe), errors.Is(err, exec.ErrShardBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case ctx.Err() == nil && strings.Contains(err.Error(), "rejected"):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// handleWarm fans ?model= to every shard's model cache.
func (h *handler) handleWarm(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "pass ?model="})
		return
	}
	statuses := h.r.Warm(r.Context(), model)
	code := http.StatusOK
	for _, s := range statuses {
		if s.Error != "" {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, map[string]any{"model": model, "shards": statuses})
}

// routerHealth is the /healthz payload: the health state machine's view of
// every shard (state, probe history, breaker, reroutes) plus the admission
// ledger when admission control is on.
type routerHealth struct {
	Status    string           `json:"status"`
	Shards    []shardHealth    `json:"shards"`
	Admission []AdmissionStats `json:"admission,omitempty"`
}

type shardHealth struct {
	Shard string `json:"shard"`
	ShardHealthSnapshot
	Breaker  string `json:"breaker"`
	Reroutes uint64 `json:"reroutes"`
}

// handleHealthz reports the aggregated health picture: each shard's FSM
// state (refreshed by an on-demand probe round), circuit-breaker state, and
// reroute count. The tier is "ok" when every shard is healthy, "degraded"
// while any shard is off-nominal but at least one still takes traffic, and
// "down" (503) only when every shard is quarantined — a degraded tier still
// serves, so it still answers 200.
func (h *handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h.r.health.ProbeAll()
	rh := routerHealth{
		Status:    "ok",
		Shards:    make([]shardHealth, h.r.Shards()),
		Admission: h.r.AdmissionStats(),
	}
	quarantined := 0
	for i, b := range h.r.cfg.Backends {
		snap := h.r.health.Snapshot(i)
		rh.Shards[i] = shardHealth{
			Shard:               b.ID(),
			ShardHealthSnapshot: snap,
			Breaker:             h.r.disp.ShardStateName(i),
			Reroutes:            h.r.RerouteCount(i),
		}
		if snap.State != ShardHealthy {
			rh.Status = "degraded"
		}
		if snap.State == ShardQuarantined {
			quarantined++
		}
	}
	code := http.StatusOK
	if quarantined == h.r.Shards() {
		rh.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rh)
}

func (h *handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if h.r.cfg.Obs == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.r.cfg.Obs.Metrics().WritePrometheus(w); err != nil {
		log.Printf("router metrics: %v", err)
	}
}

// handleDebugQueries lists recent routed queries with their fan-out attrs.
func (h *handler) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if h.r.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var sb strings.Builder
	for _, tr := range h.r.tracer.Recent() {
		snap := tr.Snapshot()
		fmt.Fprintf(&sb, "%s  %-24s wall %v\n", snap.ID, snap.Name, snap.Wall.Round(time.Microsecond))
		for k, v := range snap.Attrs {
			fmt.Fprintf(&sb, "    %-20s %s\n", k, v)
		}
		for _, span := range snap.WallSpans {
			lane := span.Track
			if lane == "" {
				lane = "wall"
			}
			fmt.Fprintf(&sb, "    [%-8s] %-24s %v\n", lane, span.Name, span.Duration.Round(time.Microsecond))
		}
		fmt.Fprintf(&sb, "    download: /debug/trace/%s\n\n", snap.ID)
	}
	io.WriteString(w, sb.String())
}

// handleDebugTrace serves one routed query's trace as Chrome trace JSON,
// per-shard fan-out lanes included.
func (h *handler) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if h.r.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	tr, ok := h.r.tracer.Get(id)
	if !ok {
		http.Error(w, "trace not retained", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteChromeTrace(w); err != nil {
		log.Printf("router trace %s: %v", id, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("router response: %v", err)
	}
}
