package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"accelscore/internal/exec"
)

// QueryResponse is the /query JSON envelope: the merged scatter result or
// an error.
type QueryResponse struct {
	OK          bool    `json:"ok"`
	Error       string  `json:"error,omitempty"`
	Backend     string  `json:"backend,omitempty"`
	Predictions []int   `json:"predictions,omitempty"`
	ScoredRows  []int   `json:"scored_rows,omitempty"`
	ClassCounts []int64 `json:"class_counts,omitempty"`
	RowsScanned int     `json:"rows_scanned,omitempty"`
	RowsScored  int     `json:"rows_scored,omitempty"`
	CacheHit    bool    `json:"cache_hit"`
	// Partial marks an explicit partial result; MissingPartitions lists
	// the hash partitions whose rows are absent (never zero-filled).
	Partial           bool  `json:"partial"`
	MissingPartitions []int `json:"missing_partitions,omitempty"`
	Shards            int   `json:"shards"`
	Reroutes          int   `json:"reroutes,omitempty"`
	StragglerGapNS    int64 `json:"straggler_gap_ns"`
	// SimTotalNS is the merged simulated timeline total (per-stage max
	// across shards — the gather critical path).
	SimTotalNS int64      `json:"sim_total_ns"`
	Timeline   []WireSpan `json:"timeline,omitempty"`
	TraceID    string     `json:"trace_id,omitempty"`
}

// Handler serves the router's HTTP surface: /query, /warm, /healthz,
// /metrics, /debug/queries and /debug/trace/<id>.
func Handler(r *Router) http.Handler {
	h := &handler{r: r}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/warm", h.handleWarm)
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/debug/queries", h.handleDebugQueries)
	mux.HandleFunc("/debug/trace/", h.handleDebugTrace)
	return mux
}

type handler struct {
	r *Router
}

// handleQuery routes one scoring statement from ?sql= (GET) or the request
// body (POST). ?tenant= engages tenant-affine routing.
func (h *handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("sql")
	if sql == "" && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "reading body: " + err.Error()})
			return
		}
		sql = strings.TrimSpace(string(body))
	}
	if sql == "" {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "no statement: pass ?sql= or a POST body"})
		return
	}
	merged, err := h.r.Query(r.Context(), sql, QueryOptions{Tenant: r.URL.Query().Get("tenant")})
	if err != nil {
		writeJSON(w, statusFor(r.Context(), err), QueryResponse{Error: err.Error()})
		return
	}
	resp := QueryResponse{
		OK:                true,
		Backend:           merged.Backend,
		Predictions:       merged.Predictions,
		ScoredRows:        merged.ScoredRows,
		ClassCounts:       merged.ClassCounts,
		RowsScanned:       merged.RowsScanned,
		RowsScored:        merged.RowsScored,
		CacheHit:          merged.CacheHit,
		Partial:           merged.Partial,
		MissingPartitions: merged.MissingPartitions,
		Shards:            merged.Shards,
		Reroutes:          merged.Reroutes,
		StragglerGapNS:    int64(merged.StragglerGap),
		SimTotalNS:        int64(merged.Timeline.Total()),
		Timeline:          wireSpans(&merged.Timeline),
		TraceID:           merged.TraceID,
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps a routing error to its HTTP status, mirroring serve's
// /query mapping so clients see consistent codes through either tier.
func statusFor(ctx context.Context, err error) int {
	var pe *exec.PartialError
	switch {
	case errors.As(err, &pe), errors.Is(err, exec.ErrShardBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case ctx.Err() == nil && strings.Contains(err.Error(), "rejected"):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// handleWarm fans ?model= to every shard's model cache.
func (h *handler) handleWarm(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "pass ?model="})
		return
	}
	statuses := h.r.Warm(r.Context(), model)
	code := http.StatusOK
	for _, s := range statuses {
		if s.Error != "" {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, map[string]any{"model": model, "shards": statuses})
}

// routerHealth is the /healthz payload: per-shard probe outcomes plus the
// dispatcher's circuit states.
type routerHealth struct {
	Status string        `json:"status"`
	Shards []shardHealth `json:"shards"`
}

type shardHealth struct {
	Shard   string `json:"shard"`
	Breaker string `json:"breaker"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
}

// handleHealthz probes every shard (bounded to 2s) and reports ok only when
// all answer; a degraded tier answers 503 with the failing shards listed.
func (h *handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	rh := routerHealth{Status: "ok", Shards: make([]shardHealth, h.r.Shards())}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ch = make(chan int, h.r.Shards())
		for i, b := range h.r.cfg.Backends {
			go func(i int, b Backend) {
				rh.Shards[i].Shard = b.ID()
				rh.Shards[i].Breaker = h.r.disp.ShardStateName(i)
				if err := b.Healthz(ctx); err != nil {
					rh.Shards[i].Error = err.Error()
				} else {
					rh.Shards[i].OK = true
				}
				ch <- i
			}(i, b)
		}
		for range h.r.cfg.Backends {
			<-ch
		}
	}()
	<-done
	code := http.StatusOK
	for _, s := range rh.Shards {
		if !s.OK {
			rh.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, rh)
}

func (h *handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if h.r.cfg.Obs == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.r.cfg.Obs.Metrics().WritePrometheus(w); err != nil {
		log.Printf("router metrics: %v", err)
	}
}

// handleDebugQueries lists recent routed queries with their fan-out attrs.
func (h *handler) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if h.r.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var sb strings.Builder
	for _, tr := range h.r.tracer.Recent() {
		snap := tr.Snapshot()
		fmt.Fprintf(&sb, "%s  %-24s wall %v\n", snap.ID, snap.Name, snap.Wall.Round(time.Microsecond))
		for k, v := range snap.Attrs {
			fmt.Fprintf(&sb, "    %-20s %s\n", k, v)
		}
		for _, span := range snap.WallSpans {
			lane := span.Track
			if lane == "" {
				lane = "wall"
			}
			fmt.Fprintf(&sb, "    [%-8s] %-24s %v\n", lane, span.Name, span.Duration.Round(time.Microsecond))
		}
		fmt.Fprintf(&sb, "    download: /debug/trace/%s\n\n", snap.ID)
	}
	io.WriteString(w, sb.String())
}

// handleDebugTrace serves one routed query's trace as Chrome trace JSON,
// per-shard fan-out lanes included.
func (h *handler) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if h.r.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	tr, ok := h.r.tracer.Get(id)
	if !ok {
		http.Error(w, "trace not retained", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteChromeTrace(w); err != nil {
		log.Printf("router trace %s: %v", id, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("router response: %v", err)
	}
}
