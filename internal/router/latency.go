// Per-shard latency tracking for the adaptive hedge trigger. Hedging fires
// when a sub-query outlives the shard's OWN recent P95 — a measured,
// shard-local threshold (Sen et al.'s "drive tuning from latency
// distributions, not static knobs") — so a uniformly slow tier doesn't
// hedge at all while a single straggler hedges immediately.
package router

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// latencyRing is how many recent successful sub-query latencies each shard
// retains for the percentile estimate.
const latencyRing = 64

// latencyTracker keeps a per-shard ring of recent successful sub-query
// latencies.
type latencyTracker struct {
	mu    sync.Mutex
	rings [][]time.Duration
	next  []int
	n     []int
}

func newLatencyTracker(shards int) *latencyTracker {
	t := &latencyTracker{
		rings: make([][]time.Duration, shards),
		next:  make([]int, shards),
		n:     make([]int, shards),
	}
	for i := range t.rings {
		t.rings[i] = make([]time.Duration, latencyRing)
	}
	return t
}

func (t *latencyTracker) note(shard int, d time.Duration) {
	t.mu.Lock()
	t.rings[shard][t.next[shard]] = d
	t.next[shard] = (t.next[shard] + 1) % latencyRing
	if t.n[shard] < latencyRing {
		t.n[shard]++
	}
	t.mu.Unlock()
}

// p95 returns the shard's P95 recent latency, or 0 while fewer than
// minSamples observations exist (hedging stays off until the estimate is
// grounded).
func (t *latencyTracker) p95(shard, minSamples int) time.Duration {
	t.mu.Lock()
	n := t.n[shard]
	if n == 0 || n < minSamples {
		t.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, t.rings[shard][:n])
	t.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n*95+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// compareResults is the hedge pair verifier: when a primary and its hedge
// BOTH complete, their results must be bit-identical — predictions,
// ordinals, class counts, and row accounting. Any divergence is a
// correctness event that fails the query loudly (the dispatcher wraps it
// NoReroute), never a silent pick-one.
func compareResults(primary, hedge any) error {
	a, ok1 := primary.(*Result)
	b, ok2 := hedge.(*Result)
	if !ok1 || !ok2 || a == nil || b == nil {
		return fmt.Errorf("non-result hedge pair (%T vs %T)", primary, hedge)
	}
	if len(a.Predictions) != len(b.Predictions) {
		return fmt.Errorf("prediction count %d vs %d", len(a.Predictions), len(b.Predictions))
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			return fmt.Errorf("row %d: prediction %d vs %d", i, a.Predictions[i], b.Predictions[i])
		}
	}
	if len(a.ScoredRows) != len(b.ScoredRows) {
		return fmt.Errorf("ordinal count %d vs %d", len(a.ScoredRows), len(b.ScoredRows))
	}
	for i := range a.ScoredRows {
		if a.ScoredRows[i] != b.ScoredRows[i] {
			return fmt.Errorf("ordinal %d: row %d vs %d", i, a.ScoredRows[i], b.ScoredRows[i])
		}
	}
	if len(a.ClassCounts) != len(b.ClassCounts) {
		return fmt.Errorf("class-count length %d vs %d", len(a.ClassCounts), len(b.ClassCounts))
	}
	for i := range a.ClassCounts {
		if a.ClassCounts[i] != b.ClassCounts[i] {
			return fmt.Errorf("class %d: count %d vs %d", i, a.ClassCounts[i], b.ClassCounts[i])
		}
	}
	if a.RowsScored != b.RowsScored {
		return fmt.Errorf("rows scored %d vs %d", a.RowsScored, b.RowsScored)
	}
	return nil
}
