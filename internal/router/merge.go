package router

import (
	"fmt"
	"sort"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/pipeline"
	"accelscore/internal/sim"
)

// Merged is a gathered scatter result, shaped like a single-node
// pipeline.QueryResult so callers (and conformance) can compare them
// directly.
type Merged struct {
	// Predictions holds one class per scored row, ordered by scan ordinal.
	Predictions []int
	// ScoredRows lists the global scan ordinals behind Predictions when a
	// filter or a partial gather restricted them; nil when every scanned
	// row is present (matching the single-node shape).
	ScoredRows []int
	// Table is the merged result table ("prediction" column, or the fused
	// aggregate).
	Table *db.Table
	// ClassCounts is the summed fused-aggregate histogram (nil for
	// non-aggregate queries).
	ClassCounts []int64
	// Backend is the engine that scored (first shard's spelling; shards
	// are symmetric).
	Backend string
	// Timeline is the merged O/L/C breakdown: per-stage MAX across shards,
	// the gather critical path — stages that run in parallel across shards
	// cost the tier their slowest instance, not their sum.
	Timeline sim.Timeline
	// RowsScanned is the table size each shard scanned; RowsScored sums
	// the per-shard scored rows.
	RowsScanned, RowsScored int
	// CacheHit reports whether EVERY shard served from its model cache.
	CacheHit bool
	// Partial marks an explicit partial result: MissingPartitions lists
	// the hash partitions with no surviving route; their rows are absent
	// from Predictions/ScoredRows, never zero-filled.
	Partial           bool
	MissingPartitions []int
	// Shards is the scatter width; Reroutes counts partitions that moved
	// off their preferred shard.
	Shards, Reroutes int
	// Hedges counts sub-queries that fired a tail-latency hedge; HedgeWins
	// counts hedges whose replica answered before the primary.
	Hedges, HedgeWins int
	// StragglerGap is slowest minus fastest sub-query latency; per-shard
	// latencies are in ShardLatency, indexed by partition.
	StragglerGap time.Duration
	ShardLatency []time.Duration
	// TraceID identifies the router-side trace, when tracing is on.
	TraceID string
}

// mergeTimelines folds shard timelines per stage: span names keep their
// first-seen order, each taking its MAX duration across shards.
func mergeTimelines(results []*Result) sim.Timeline {
	var order []string
	type agg struct {
		kind int
		max  int64
	}
	byName := make(map[string]*agg)
	for _, r := range results {
		for _, s := range r.Timeline {
			a, ok := byName[s.Name]
			if !ok {
				a = &agg{kind: s.Kind}
				byName[s.Name] = a
				order = append(order, s.Name)
			}
			if s.NS > a.max {
				a.max = s.NS
			}
		}
	}
	var tl sim.Timeline
	for _, name := range order {
		a := byName[name]
		tl.Add(name, sim.Kind(a.kind), time.Duration(a.max))
	}
	return tl
}

// Merge gathers per-partition shard results into one Merged. results is
// indexed by partition; a nil entry is a missing partition (the caller
// already classified it partial). mode is the query's aggregation.
func Merge(mode pipeline.AggMode, results []*Result) (*Merged, error) {
	m := &Merged{Shards: len(results)}
	present := make([]*Result, 0, len(results))
	for k, r := range results {
		if r == nil {
			m.Partial = true
			m.MissingPartitions = append(m.MissingPartitions, k)
			continue
		}
		present = append(present, r)
	}
	if len(present) == 0 {
		return nil, fmt.Errorf("router: no shard results to merge")
	}
	m.Backend = present[0].Backend
	m.CacheHit = true
	for _, r := range present {
		if r.RowsScanned > m.RowsScanned {
			m.RowsScanned = r.RowsScanned
		}
		m.RowsScored += r.RowsScored
		m.CacheHit = m.CacheHit && r.CacheHit
	}
	m.Timeline = mergeTimelines(present)

	if mode != pipeline.AggNone {
		for _, r := range present {
			for cls, c := range r.ClassCounts {
				for len(m.ClassCounts) <= cls {
					m.ClassCounts = append(m.ClassCounts, 0)
				}
				m.ClassCounts[cls] += c
			}
		}
		tbl, err := pipeline.AggTable(mode, nil, m.ClassCounts)
		if err != nil {
			return nil, err
		}
		m.Table = tbl
		return m, nil
	}

	// Non-aggregate: k-way merge by global scan ordinal. A shard result
	// without ScoredRows scored every scanned row (single-shard or tenant
	// routing); with ScoredRows, its ordinals interleave with the other
	// partitions'.
	type pred struct{ row, class int }
	var rows []pred
	dense := true
	for _, r := range present {
		if len(r.ScoredRows) == 0 && len(r.Predictions) > 0 && r.RowsScored == r.RowsScanned {
			for i, p := range r.Predictions {
				rows = append(rows, pred{row: i, class: p})
			}
			continue
		}
		dense = false
		if len(r.ScoredRows) != len(r.Predictions) {
			return nil, fmt.Errorf("router: shard %s returned %d ordinals for %d predictions",
				r.ShardID, len(r.ScoredRows), len(r.Predictions))
		}
		for i, row := range r.ScoredRows {
			rows = append(rows, pred{row: row, class: r.Predictions[i]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].row < rows[j].row })
	for i := 1; i < len(rows); i++ {
		if rows[i].row == rows[i-1].row {
			return nil, fmt.Errorf("router: row %d scored by two partitions", rows[i].row)
		}
	}
	m.Predictions = make([]int, len(rows))
	keepOrdinals := !dense &&
		(m.Partial || len(rows) != m.RowsScanned || (len(rows) > 0 && rows[len(rows)-1].row != len(rows)-1))
	if keepOrdinals {
		m.ScoredRows = make([]int, len(rows))
	}
	for i, p := range rows {
		m.Predictions[i] = p.class
		if keepOrdinals {
			m.ScoredRows[i] = p.row
		}
	}
	tbl, err := db.NewTable("predictions", []db.Column{{Name: "prediction", Type: db.Int64Col}})
	if err != nil {
		return nil, err
	}
	if err := tbl.AppendIntRows(m.Predictions); err != nil {
		return nil, err
	}
	m.Table = tbl
	return m, nil
}
