package router

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"accelscore/internal/exec"
)

// testClock is a manually advanced clock for the FSM's backoff dwell.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1000, 0)} }

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// healthManager builds a manager with deterministic thresholds, no probe
// loop, and no warm hook (tests that need warming pass their own).
func healthManager(warm func(ctx context.Context, shard int)) (*HealthManager, *testClock) {
	clock := newTestClock()
	cfg := HealthConfig{
		FailThreshold:       2,
		QuarantineThreshold: 2,
		PassThreshold:       2,
		RejoinProbes:        2,
		RejoinTrickle:       3,
		TrickleConcurrency:  1,
		QuarantineBackoff:   time.Second,
		MaxBackoff:          4 * time.Second,
		now:                 clock.now,
	}
	return NewHealthManager(2, cfg, nil, warm, nil), clock
}

// fail feeds n consecutive passive failures into shard i.
func fail(m *HealthManager, i, n int) {
	for ; n > 0; n-- {
		m.note(i, false, false, false)
	}
}

// pass feeds n consecutive passive successes into shard i.
func pass(m *HealthManager, i, n int) {
	for ; n > 0; n-- {
		m.note(i, true, false, false)
	}
}

// quarantine drives shard i from healthy into quarantine.
func quarantine(t *testing.T, m *HealthManager, i int) {
	t.Helper()
	fail(m, i, 2) // healthy -> degraded
	fail(m, i, 2) // degraded -> quarantined
	if s := m.State(i); s != ShardQuarantined {
		t.Fatalf("state %v after failure burst, want quarantined", s)
	}
}

// TestHealthFSMLegalTransitions walks the full lifecycle: healthy ->
// degraded -> quarantined -> rejoining -> healthy, checking each edge fires
// at exactly its threshold and the gate refuses a quarantined shard.
func TestHealthFSMLegalTransitions(t *testing.T) {
	m, clock := healthManager(nil)

	fail(m, 0, 1)
	if s := m.State(0); s != ShardHealthy {
		t.Fatalf("one failure flipped the state to %v; threshold is 2", s)
	}
	fail(m, 0, 1)
	if s := m.State(0); s != ShardDegraded {
		t.Fatalf("state %v after FailThreshold failures, want degraded", s)
	}
	if !m.Acquire(0) {
		t.Fatal("degraded shard must still take traffic")
	}
	m.Release(0, exec.GateAbandoned, 0)

	// Degraded recovers through consecutive passes.
	pass(m, 0, 2)
	if s := m.State(0); s != ShardHealthy {
		t.Fatalf("state %v after PassThreshold passes, want healthy", s)
	}

	quarantine(t, m, 0)
	if m.Acquire(0) {
		t.Fatal("quarantined shard must refuse traffic")
	}

	// Passive successes (stray in-flight responses) must NOT rehabilitate.
	pass(m, 0, 10)
	if s := m.State(0); s != ShardQuarantined {
		t.Fatalf("passive passes rehabilitated a quarantined shard to %v", s)
	}

	// Probe passes inside the backoff dwell are ignored.
	m.NoteProbe(0, nil)
	m.NoteProbe(0, nil)
	if s := m.State(0); s != ShardQuarantined {
		t.Fatalf("probe passes inside the backoff dwell moved the state to %v", s)
	}

	// After the dwell, RejoinProbes consecutive probe passes rejoin.
	clock.advance(2 * time.Second)
	m.NoteProbe(0, nil)
	m.NoteProbe(0, nil)
	if s := m.State(0); s != ShardRejoining {
		t.Fatalf("state %v after rejoin probes, want rejoining", s)
	}

	// Trickle graduation: RejoinTrickle real successes (probes don't count).
	m.NoteProbe(0, nil)
	for i := 0; i < 3; i++ {
		if !m.Acquire(0) {
			t.Fatalf("trickle slot %d refused", i)
		}
		m.Release(0, exec.GateSuccess, time.Millisecond)
	}
	if s := m.State(0); s != ShardHealthy {
		t.Fatalf("state %v after rejoin trickle, want healthy", s)
	}
	if b := m.Snapshot(0).Backoff; b != 0 {
		t.Fatalf("clean rejoin should reset the backoff penalty, got %v", b)
	}
}

// TestHealthNoFlapUnderAlternatingProbes alternates pass/fail signals and
// checks hysteresis holds: consecutive-signal thresholds mean the state
// never moves, so a jittery shard doesn't oscillate.
func TestHealthNoFlapUnderAlternatingProbes(t *testing.T) {
	m, _ := healthManager(nil)
	for i := 0; i < 50; i++ {
		m.NoteProbe(0, nil)
		m.NoteProbe(0, errors.New("blip"))
	}
	if s := m.State(0); s != ShardHealthy {
		t.Fatalf("alternating probes moved the state to %v", s)
	}
	if n := m.Transitions(0); n != 0 {
		t.Fatalf("%d state transitions under alternating probes, want 0", n)
	}
}

// TestHealthWarmFirstRejoin blocks the warm hook and checks the rejoin
// trickle stays gated until warming completes.
func TestHealthWarmFirstRejoin(t *testing.T) {
	warmGate := make(chan struct{})
	warmed := make(chan struct{})
	m, clock := healthManager(func(ctx context.Context, shard int) {
		close(warmed)
		<-warmGate
	})
	quarantine(t, m, 0)
	clock.advance(2 * time.Second)
	m.NoteProbe(0, nil)
	m.NoteProbe(0, nil)
	if s := m.State(0); s != ShardRejoining {
		t.Fatalf("state %v, want rejoining", s)
	}
	<-warmed // warm started
	if m.Acquire(0) {
		t.Fatal("trickle must stay gated while the shard re-warms")
	}
	close(warmGate)
	// The warm goroutine clears the gate asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for !m.Acquire(0) {
		if time.Now().After(deadline) {
			t.Fatal("trickle never opened after warming finished")
		}
		time.Sleep(time.Millisecond)
	}
	m.Release(0, exec.GateSuccess, time.Millisecond)
	m.Close()
}

// TestHealthTrickleConcurrencyBound checks a rejoining shard admits at most
// TrickleConcurrency concurrent sub-queries.
func TestHealthTrickleConcurrencyBound(t *testing.T) {
	m, clock := healthManager(nil)
	quarantine(t, m, 0)
	clock.advance(2 * time.Second)
	m.NoteProbe(0, nil)
	m.NoteProbe(0, nil)
	if !m.Acquire(0) {
		t.Fatal("first trickle slot refused")
	}
	if m.Acquire(0) {
		t.Fatal("second concurrent trickle slot admitted; bound is 1")
	}
	m.Release(0, exec.GateSuccess, time.Millisecond)
	if !m.Acquire(0) {
		t.Fatal("slot should free after release")
	}
	m.Release(0, exec.GateSuccess, time.Millisecond)
}

// TestHealthRequarantineDoublesBackoff fails a rejoining shard and checks it
// re-quarantines with a doubled (then capped) backoff.
func TestHealthRequarantineDoublesBackoff(t *testing.T) {
	m, clock := healthManager(nil)
	rejoin := func() {
		clock.advance(10 * time.Second)
		m.NoteProbe(0, nil)
		m.NoteProbe(0, nil)
		if s := m.State(0); s != ShardRejoining {
			t.Fatalf("state %v, want rejoining", s)
		}
	}
	quarantine(t, m, 0)
	if b := m.Snapshot(0).Backoff; b != time.Second {
		t.Fatalf("first backoff %v, want 1s", b)
	}
	rejoin()
	m.note(0, false, false, false) // one trickle failure
	if s := m.State(0); s != ShardQuarantined {
		t.Fatalf("state %v after rejoin failure, want quarantined", s)
	}
	if b := m.Snapshot(0).Backoff; b != 2*time.Second {
		t.Fatalf("backoff %v after one flap, want 2s", b)
	}
	rejoin()
	m.note(0, false, false, false)
	if b := m.Snapshot(0).Backoff; b != 4*time.Second {
		t.Fatalf("backoff %v after two flaps, want 4s", b)
	}
	rejoin()
	m.note(0, false, false, false)
	if b := m.Snapshot(0).Backoff; b != 4*time.Second {
		t.Fatalf("backoff %v should cap at MaxBackoff 4s", b)
	}
}

// TestHealthSlowPassDegradesNeverQuarantines feeds successful-but-slow
// attempts: they may degrade a healthy shard but must never quarantine it —
// a straggler still serves.
func TestHealthSlowPassDegradesNeverQuarantines(t *testing.T) {
	clock := newTestClock()
	cfg := HealthConfig{
		FailThreshold:       2,
		QuarantineThreshold: 2,
		PassThreshold:       2,
		SlowAfter:           10 * time.Millisecond,
		now:                 clock.now,
	}
	m := NewHealthManager(1, cfg, nil, nil, nil)
	slow := func() { m.Release(0, exec.GateSuccess, 50*time.Millisecond) }
	m.Acquire(0)
	m.Acquire(0)
	slow()
	slow()
	if s := m.State(0); s != ShardDegraded {
		t.Fatalf("state %v after slow passes, want degraded", s)
	}
	// While degraded, slow successes count as passes: the shard answers
	// correctly, so it recovers rather than sinking to quarantine.
	for i := 0; i < 10; i++ {
		m.Acquire(0)
		slow()
		if s := m.State(0); s == ShardQuarantined {
			t.Fatal("slowness alone quarantined a serving shard")
		}
	}
	if s := m.State(0); s != ShardHealthy {
		t.Fatalf("state %v after recovering passes, want healthy", s)
	}
}

// TestHealthConcurrentSignals hammers the FSM from many goroutines under
// -race: mixed probes, acquires, and releases must leave a consistent
// in-flight ledger.
func TestHealthConcurrentSignals(t *testing.T) {
	m, _ := healthManager(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				shard := i % 2
				if m.Acquire(shard) {
					if i%3 == 0 {
						m.Release(shard, exec.GateFailure, time.Millisecond)
					} else {
						m.Release(shard, exec.GateSuccess, time.Millisecond)
					}
				}
				if i%7 == 0 {
					m.NoteProbe(shard, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if n := m.Snapshot(i).InFlight; n != 0 {
			t.Fatalf("shard %d in-flight ledger %d after drain, want 0", i, n)
		}
	}
}
