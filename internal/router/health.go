// Shard health state machine for the scatter-gather tier. Bare circuit
// breakers flap: a cooldown expires, one probe query hits a still-sick
// shard, the circuit re-opens, and real traffic keeps paying for the
// probes. This state machine replaces that with explicit per-shard states —
//
//	healthy → degraded → quarantined → rejoining → healthy
//
// driven by BOTH active /healthz probing and passive per-request
// error/latency signals, with hysteresis (consecutive-signal thresholds) so
// alternating pass/fail never oscillates the state, and a controlled
// half-open rejoin: a quarantined shard must pass consecutive probes after
// a backoff dwell, is then re-warmed (model cache first, via /warm), and
// only graduates back to healthy after a trickle of real traffic succeeds.
package router

import (
	"context"
	"sync"
	"time"

	"accelscore/internal/exec"
)

// ShardState is a shard's position in the health state machine. The
// numeric values are the accelscore_router_shard_state gauge encoding.
type ShardState int

const (
	// ShardHealthy: full traffic, eligible as a hedge target.
	ShardHealthy ShardState = 0
	// ShardDegraded: still serving (its partitions would otherwise all
	// reroute), but flagged and excluded from hedge targeting.
	ShardDegraded ShardState = 1
	// ShardQuarantined: no traffic at all; only probes may rehabilitate it.
	ShardQuarantined ShardState = 2
	// ShardRejoining: warmed and admitting a trickle of real traffic; one
	// failure re-quarantines it with a doubled backoff.
	ShardRejoining ShardState = 3
)

// String returns the state's label spelling.
func (s ShardState) String() string {
	switch s {
	case ShardDegraded:
		return "degraded"
	case ShardQuarantined:
		return "quarantined"
	case ShardRejoining:
		return "rejoining"
	default:
		return "healthy"
	}
}

// HealthConfig tunes the shard health state machine. Zero values take the
// defaults noted per field.
type HealthConfig struct {
	// ProbeInterval is the active /healthz probe cadence; 0 disables the
	// probe loop (passive signals still drive the state machine).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold consecutive failures demote healthy → degraded
	// (default 2; 1 makes a single failure degrade).
	FailThreshold int
	// QuarantineThreshold consecutive failures while degraded quarantine
	// the shard (default 3).
	QuarantineThreshold int
	// PassThreshold consecutive successes promote degraded → healthy
	// (default 2).
	PassThreshold int
	// RejoinProbes consecutive probe passes (after the backoff dwell) move
	// quarantined → rejoining (default 2).
	RejoinProbes int
	// RejoinTrickle successful real sub-queries graduate rejoining →
	// healthy (default 4).
	RejoinTrickle int
	// TrickleConcurrency bounds concurrent real sub-queries while
	// rejoining (default 1).
	TrickleConcurrency int
	// QuarantineBackoff is the minimum quarantine dwell before rejoin
	// probes count (default 500ms); it doubles on each re-quarantine up
	// to MaxBackoff (default 8s).
	QuarantineBackoff time.Duration
	MaxBackoff        time.Duration
	// SlowAfter, when > 0, treats a successful attempt slower than this
	// as a degradation signal while the shard is healthy (passive latency
	// signal). Slowness never quarantines: a straggler still serves.
	SlowAfter time.Duration

	// now is a test hook (default time.Now).
	now func() time.Time
}

func (c *HealthConfig) fill() {
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.QuarantineThreshold <= 0 {
		c.QuarantineThreshold = 3
	}
	if c.PassThreshold <= 0 {
		c.PassThreshold = 2
	}
	if c.RejoinProbes <= 0 {
		c.RejoinProbes = 2
	}
	if c.RejoinTrickle <= 0 {
		c.RejoinTrickle = 4
	}
	if c.TrickleConcurrency <= 0 {
		c.TrickleConcurrency = 1
	}
	if c.QuarantineBackoff <= 0 {
		c.QuarantineBackoff = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// shardFSM is one shard's health state. All fields are guarded by mu.
type shardFSM struct {
	mu            sync.Mutex
	state         ShardState
	fails         int // consecutive failure signals
	passes        int // consecutive success signals
	trickleOK     int // successful real sub-queries while rejoining
	inFlight      int // acquired-but-unreleased gate slots
	warming       bool
	quarantinedAt time.Time
	backoff       time.Duration
	lastProbe     time.Time
	lastProbeOK   bool
	lastProbeErr  string
	transitions   int
}

// ShardHealthSnapshot is one shard's health, for /healthz and tests.
type ShardHealthSnapshot struct {
	State        ShardState    `json:"-"`
	StateName    string        `json:"state"`
	InFlight     int           `json:"in_flight"`
	Transitions  int           `json:"transitions"`
	LastProbe    time.Time     `json:"last_probe,omitzero"`
	LastProbeOK  bool          `json:"last_probe_ok"`
	LastProbeErr string        `json:"last_probe_error,omitempty"`
	Backoff      time.Duration `json:"-"`
}

// HealthManager runs the health state machine for every shard. It
// implements exec.ShardGate so the dispatcher consults it on every route
// and feeds it passive signals, and optionally runs an active probe loop.
type HealthManager struct {
	cfg     HealthConfig
	shards  []*shardFSM
	probe   func(ctx context.Context, shard int) error
	warm    func(ctx context.Context, shard int)
	onState func(shard int, s ShardState)

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewHealthManager builds the manager for n shards. probe actively checks
// one shard (nil disables probing), warm pre-warms a shard's model cache
// before its rejoin trickle (nil skips warming), and onState observes every
// state transition (metrics gauge; may be nil).
func NewHealthManager(n int, cfg HealthConfig,
	probe func(ctx context.Context, shard int) error,
	warm func(ctx context.Context, shard int),
	onState func(shard int, s ShardState)) *HealthManager {
	cfg.fill()
	m := &HealthManager{
		cfg:     cfg,
		shards:  make([]*shardFSM, n),
		probe:   probe,
		warm:    warm,
		onState: onState,
		stop:    make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = &shardFSM{}
	}
	return m
}

// Start launches the active probe loop (no-op when ProbeInterval is 0 or
// no probe function was given).
func (m *HealthManager) Start() {
	if m == nil || m.cfg.ProbeInterval <= 0 || m.probe == nil {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.ProbeAll()
			}
		}
	}()
}

// Close stops the probe loop and waits for it.
func (m *HealthManager) Close() {
	if m == nil {
		return
	}
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// ProbeAll probes every shard once, concurrently, and feeds the outcomes
// into the state machine.
func (m *HealthManager) ProbeAll() {
	if m.probe == nil {
		return
	}
	var wg sync.WaitGroup
	for i := range m.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ProbeTimeout)
			defer cancel()
			m.NoteProbe(i, m.probe(ctx, i))
		}(i)
	}
	wg.Wait()
}

// NoteProbe feeds one active probe outcome into shard i's state machine.
func (m *HealthManager) NoteProbe(i int, err error) {
	f := m.shards[i]
	f.mu.Lock()
	f.lastProbe = m.cfg.now()
	f.lastProbeOK = err == nil
	if err != nil {
		f.lastProbeErr = err.Error()
	} else {
		f.lastProbeErr = ""
	}
	f.mu.Unlock()
	m.note(i, err == nil, true, false)
}

// State returns shard i's current state.
func (m *HealthManager) State(i int) ShardState {
	f := m.shards[i]
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// IsHealthy reports whether shard i is fully healthy (hedge-target
// eligible).
func (m *HealthManager) IsHealthy(i int) bool { return m.State(i) == ShardHealthy }

// Snapshot returns shard i's health for /healthz.
func (m *HealthManager) Snapshot(i int) ShardHealthSnapshot {
	f := m.shards[i]
	f.mu.Lock()
	defer f.mu.Unlock()
	return ShardHealthSnapshot{
		State:        f.state,
		StateName:    f.state.String(),
		InFlight:     f.inFlight,
		Transitions:  f.transitions,
		LastProbe:    f.lastProbe,
		LastProbeOK:  f.lastProbeOK,
		LastProbeErr: f.lastProbeErr,
		Backoff:      f.backoff,
	}
}

// Transitions returns shard i's lifetime state-transition count (the
// anti-flap tests assert it stays bounded).
func (m *HealthManager) Transitions(i int) int {
	f := m.shards[i]
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transitions
}

// Acquire implements exec.ShardGate: quarantined shards (and shards mid
// rejoin-warm) refuse traffic; rejoining shards admit a bounded trickle.
func (m *HealthManager) Acquire(shard int) bool {
	f := m.shards[shard]
	f.mu.Lock()
	defer f.mu.Unlock()
	switch f.state {
	case ShardQuarantined:
		return false
	case ShardRejoining:
		if f.warming || f.inFlight >= m.cfg.TrickleConcurrency {
			return false
		}
	}
	f.inFlight++
	return true
}

// Release implements exec.ShardGate, feeding the attempt's outcome back as
// a passive health signal.
func (m *HealthManager) Release(shard int, outcome exec.GateOutcome, latency time.Duration) {
	f := m.shards[shard]
	f.mu.Lock()
	if f.inFlight > 0 {
		f.inFlight--
	}
	f.mu.Unlock()
	switch outcome {
	case exec.GateSuccess:
		slow := m.cfg.SlowAfter > 0 && latency > m.cfg.SlowAfter
		m.note(shard, true, false, slow)
	case exec.GateFailure:
		m.note(shard, false, false, false)
	}
	// GateAbandoned: no signal.
}

// note runs one signal through shard i's state machine. fromProbe marks
// active probe signals (the only ones that can rehabilitate a quarantined
// shard, and ones that never count toward the rejoin trickle). slow marks
// a successful-but-slow attempt: a degradation signal while healthy, never
// worse.
func (m *HealthManager) note(i int, ok, fromProbe, slow bool) {
	f := m.shards[i]
	f.mu.Lock()
	prev := f.state
	needWarm := false
	switch f.state {
	case ShardHealthy:
		if ok && !slow {
			f.fails = 0
		} else {
			f.fails++
			if f.fails >= m.cfg.FailThreshold {
				f.state = ShardDegraded
				f.fails, f.passes = 0, 0
			}
		}
	case ShardDegraded:
		if ok {
			// A slow success while already degraded still counts as a
			// pass: slowness alone must never quarantine a serving shard.
			f.passes++
			f.fails = 0
			if f.passes >= m.cfg.PassThreshold {
				f.state = ShardHealthy
				f.fails, f.passes = 0, 0
			}
		} else {
			f.fails++
			f.passes = 0
			if f.fails >= m.cfg.QuarantineThreshold {
				m.quarantineLocked(f)
			}
		}
	case ShardQuarantined:
		// Only probes rehabilitate, and only after the backoff dwell.
		if !fromProbe {
			break
		}
		if !ok {
			f.passes = 0
			break
		}
		if m.cfg.now().Sub(f.quarantinedAt) < f.backoff {
			break
		}
		f.passes++
		if f.passes >= m.cfg.RejoinProbes {
			f.state = ShardRejoining
			f.fails, f.passes, f.trickleOK = 0, 0, 0
			f.warming = m.warm != nil
			needWarm = f.warming
		}
	case ShardRejoining:
		if !ok {
			// One failure during rejoin re-quarantines with a doubled
			// backoff — flapping shards pay exponentially for each flap.
			m.quarantineLocked(f)
			break
		}
		if fromProbe {
			break // probes never count toward the trickle
		}
		f.trickleOK++
		if f.trickleOK >= m.cfg.RejoinTrickle {
			f.state = ShardHealthy
			f.fails, f.passes, f.trickleOK = 0, 0, 0
			f.backoff = 0 // a clean rejoin resets the penalty
		}
	}
	next := f.state
	if next != prev {
		f.transitions++
	}
	f.mu.Unlock()

	if next != prev && m.onState != nil {
		m.onState(i, next)
	}
	if needWarm {
		// Warm-first rejoin: the trickle stays gated behind f.warming
		// until the shard's model cache is re-warmed.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.warm(ctx, i)
			f.mu.Lock()
			f.warming = false
			f.mu.Unlock()
		}()
	}
}

// quarantineLocked moves f into quarantine, doubling its backoff (capped).
// Caller holds f.mu.
func (m *HealthManager) quarantineLocked(f *shardFSM) {
	f.state = ShardQuarantined
	f.fails, f.passes, f.trickleOK = 0, 0, 0
	f.quarantinedAt = m.cfg.now()
	switch {
	case f.backoff <= 0:
		f.backoff = m.cfg.QuarantineBackoff
	case f.backoff*2 > m.cfg.MaxBackoff:
		f.backoff = m.cfg.MaxBackoff
	default:
		f.backoff *= 2
	}
}
