// Package router implements the sharded scatter-gather serving tier: a
// front that hash-partitions a scoring query's rows across N data-symmetric
// shard replicas (every shard holds the full table; FNV over the stable row
// ordinal assigns each row to exactly one partition), scatters one
// sub-query per partition through per-shard circuit breakers, and merges
// the shard results — predictions keyed by scan ordinal, class-count
// histograms summed, simulated O/L/C timelines folded per stage — into a
// single result bit-identical to a single-node run.
//
// The paper's question ("is acceleration worth the overheads?") recurs at
// tier scale: the scatter buys parallel scoring but pays router overheads
// (serialization, HTTP, the gather barrier's straggler gap) that do not
// amortize with width. The router measures exactly those costs via
// accelscore_router_* metrics and per-shard trace tracks.
package router

import (
	"fmt"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/pipeline"
	"accelscore/internal/sim"
)

// Request is the wire form of a validated scoring request: the router
// parses SQL once, then POSTs this JSON (with a per-shard Partition) to
// each shard's /score endpoint, so shards never re-parse SQL.
type Request struct {
	Model   string `json:"model"`
	Data    string `json:"data"`
	Backend string `json:"backend,omitempty"`
	Limit   int    `json:"limit,omitempty"`
	// TimeoutNS is the query's own deadline in nanoseconds (0 = none).
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
	// Where is the pushed-down filter in canonical FormatConditions form.
	Where string `json:"where,omitempty"`
	// Agg is the fused aggregation mode: "none", "count" or "group_count".
	Agg string `json:"agg,omitempty"`
	// Partition is the shard's hash partition as "k/n" ("" = all rows).
	Partition string `json:"partition,omitempty"`
}

// ParseAgg maps the wire aggregation spelling back to its mode.
func ParseAgg(s string) (pipeline.AggMode, error) {
	switch s {
	case "", "none":
		return pipeline.AggNone, nil
	case "count":
		return pipeline.AggCount, nil
	case "group_count":
		return pipeline.AggGroupCount, nil
	default:
		return pipeline.AggNone, fmt.Errorf("router: unknown aggregation %q", s)
	}
}

// WireRequest renders a validated scoring request for the wire.
func WireRequest(req *pipeline.ScoreRequest) Request {
	w := Request{
		Model:     req.Model,
		Data:      req.Data,
		Backend:   req.Backend,
		Limit:     req.Limit,
		TimeoutNS: int64(req.Timeout),
		Where:     db.FormatConditions(req.Where),
		Partition: req.Partition.String(),
	}
	if req.Agg != pipeline.AggNone {
		w.Agg = req.Agg.String()
	}
	return w
}

// ScoreRequest re-validates the wire request into the pipeline form.
func (r Request) ScoreRequest() (*pipeline.ScoreRequest, error) {
	if r.Model == "" || r.Data == "" {
		return nil, fmt.Errorf("router: request needs model and data")
	}
	req := &pipeline.ScoreRequest{
		Model:   r.Model,
		Data:    r.Data,
		Backend: r.Backend,
		Limit:   r.Limit,
		Timeout: time.Duration(r.TimeoutNS),
	}
	if r.Limit < 0 {
		return nil, fmt.Errorf("router: negative limit %d", r.Limit)
	}
	if r.TimeoutNS < 0 {
		return nil, fmt.Errorf("router: negative timeout %d", r.TimeoutNS)
	}
	if r.Where != "" {
		conds, err := db.ParseConditionList(r.Where)
		if err != nil {
			return nil, fmt.Errorf("router: where: %v", err)
		}
		req.Where = conds
	}
	agg, err := ParseAgg(r.Agg)
	if err != nil {
		return nil, err
	}
	req.Agg = agg
	if r.Partition != "" {
		part, err := pipeline.ParsePartition(r.Partition)
		if err != nil {
			return nil, err
		}
		req.Partition = part
	}
	return req, nil
}

// WireSpan is one simulated-timeline span on the wire; Kind uses the
// sim.Kind integer encoding.
type WireSpan struct {
	Name string `json:"name"`
	Kind int    `json:"kind"`
	NS   int64  `json:"ns"`
}

// wireSpans flattens a timeline.
func wireSpans(tl *sim.Timeline) []WireSpan {
	spans := tl.Spans()
	out := make([]WireSpan, len(spans))
	for i, s := range spans {
		out[i] = WireSpan{Name: s.Name, Kind: int(s.Kind), NS: int64(s.Duration)}
	}
	return out
}

// timeline rebuilds a sim.Timeline from wire spans.
func timeline(spans []WireSpan) sim.Timeline {
	var tl sim.Timeline
	for _, s := range spans {
		tl.Add(s.Name, sim.Kind(s.Kind), time.Duration(s.NS))
	}
	return tl
}

// Error codes a shard's /score endpoint uses to classify failures so the
// router knows whether rerouting can help.
const (
	// CodeBadRequest marks query-level errors that fail identically on
	// every replica (unknown model, malformed filter): never rerouted.
	CodeBadRequest = "bad_request"
	// CodeRejected marks admission-queue shedding (the shard is
	// overloaded): rerouting to a less loaded replica can help.
	CodeRejected = "rejected"
	// CodeTimeout marks a query deadline expiry on the shard.
	CodeTimeout = "timeout"
	// CodeCanceled marks client-cancellation observed by the shard.
	CodeCanceled = "canceled"
	// CodeInternal marks everything else.
	CodeInternal = "internal"
)

// Result is the wire form of one shard's sub-query outcome.
type Result struct {
	ShardID string `json:"shard_id,omitempty"`
	Backend string `json:"backend,omitempty"`
	// Predictions holds one class per scored row; ScoredRows holds the
	// matching scan ordinals (global, post-@limit) when a selection or
	// partition restricted scoring.
	Predictions []int `json:"predictions,omitempty"`
	ScoredRows  []int `json:"scored_rows,omitempty"`
	// ClassCounts carries fused-aggregate results: indexed by class for
	// group_count, a single total for count.
	ClassCounts    []int64    `json:"class_counts,omitempty"`
	RowsScanned    int        `json:"rows_scanned"`
	RowsScored     int        `json:"rows_scored"`
	CacheHit       bool       `json:"cache_hit"`
	Fused          bool       `json:"fused"`
	Retries        int        `json:"retries,omitempty"`
	FallbackFrom   string     `json:"fallback_from,omitempty"`
	FallbackReason string     `json:"fallback_reason,omitempty"`
	TraceID        string     `json:"trace_id,omitempty"`
	Timeline       []WireSpan `json:"timeline,omitempty"`
	ScoringDetail  []WireSpan `json:"scoring_detail,omitempty"`
	// Error and Code report a failed sub-query (everything above is then
	// unset): Code is one of the Code* constants.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// WireResult renders a shard-local QueryResult for the wire. mode is the
// request's aggregation mode, needed to lift the result table back into
// mergeable class counts.
func WireResult(shardID string, mode pipeline.AggMode, res *pipeline.QueryResult) (*Result, error) {
	out := &Result{
		ShardID:        shardID,
		Backend:        res.Backend,
		Predictions:    res.Predictions,
		ScoredRows:     res.ScoredRows,
		RowsScanned:    res.RowsScanned,
		RowsScored:     res.RowsScored,
		CacheHit:       res.CacheHit,
		Fused:          res.Fused,
		Retries:        res.Retries,
		FallbackFrom:   res.FallbackFrom,
		FallbackReason: res.FallbackReason,
		TraceID:        res.TraceID,
		Timeline:       wireSpans(&res.Timeline),
		ScoringDetail:  wireSpans(&res.ScoringDetail),
	}
	switch mode {
	case pipeline.AggNone:
	case pipeline.AggCount:
		if res.Table == nil || res.Table.NumRows() != 1 {
			return nil, fmt.Errorf("router: count result has no count row")
		}
		out.ClassCounts = []int64{res.Table.Rows()[0][0].I}
	case pipeline.AggGroupCount:
		if res.Table == nil {
			return nil, fmt.Errorf("router: group_count result has no table")
		}
		for _, row := range res.Table.Rows() {
			cls := int(row[0].I)
			if cls < 0 {
				return nil, fmt.Errorf("router: negative class %d in group_count result", cls)
			}
			for len(out.ClassCounts) <= cls {
				out.ClassCounts = append(out.ClassCounts, 0)
			}
			out.ClassCounts[cls] = row[1].I
		}
	default:
		return nil, fmt.Errorf("router: unknown aggregation mode %v", mode)
	}
	return out, nil
}
