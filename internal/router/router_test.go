package router_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/exec"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
	"accelscore/internal/router"
)

// newShardPipeline builds one data-symmetric replica: full demo table,
// trained forest, its own model cache.
func newShardPipeline(t testing.TB, rows int) *pipeline.Pipeline {
	t.Helper()
	tb := platform.New()
	d := db.New()
	data := dataset.Iris().Replicate(rows)
	tbl, err := db.TableFromDataset("iris", data)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  8,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreModel("iris_rf", f); err != nil {
		t.Fatal(err)
	}
	return &pipeline.Pipeline{
		DB:       d,
		Runtime:  hw.DefaultRuntime(),
		Registry: tb.Registry,
		Advisor:  tb.Advisor,
		Cache:    pipeline.NewModelCache(4),
	}
}

// newLocalRouter builds a router over n in-process shard replicas plus one
// extra single-node pipeline as the bit-identical oracle.
func newLocalRouter(t testing.TB, n, rows int, cfg router.Config) (*router.Router, *pipeline.Pipeline) {
	t.Helper()
	backends := make([]router.Backend, n)
	for i := range backends {
		backends[i] = &router.Local{Name: fmt.Sprintf("shard-%d", i), Pipe: newShardPipeline(t, rows)}
	}
	cfg.Backends = backends
	r, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, newShardPipeline(t, rows)
}

const plainSQL = "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX'"

func TestRouterBitIdenticalPlain(t *testing.T) {
	r, single := newLocalRouter(t, 3, 400, router.Config{Obs: obs.NewObserver()})
	want, err := single.ExecQuery(plainSQL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Query(context.Background(), plainSQL, router.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("healthy scatter reported partial")
	}
	if got.Shards != 3 {
		t.Fatalf("scatter width %d", got.Shards)
	}
	if len(got.Predictions) != len(want.Predictions) {
		t.Fatalf("merged %d predictions, single-node %d", len(got.Predictions), len(want.Predictions))
	}
	for i := range want.Predictions {
		if got.Predictions[i] != want.Predictions[i] {
			t.Fatalf("row %d: merged %d, single-node %d", i, got.Predictions[i], want.Predictions[i])
		}
	}
	if got.ScoredRows != nil {
		t.Fatal("full merge kept scored-row ordinals; single-node shape is nil")
	}
	if got.RowsScanned != want.RowsScanned || got.RowsScored != want.RowsScored {
		t.Fatalf("rows scanned/scored %d/%d, single-node %d/%d",
			got.RowsScanned, got.RowsScored, want.RowsScanned, want.RowsScored)
	}
	if got.Backend != want.Backend {
		t.Fatalf("backend %q vs %q", got.Backend, want.Backend)
	}
	// Merged timeline is the per-stage max across shards: total must not
	// exceed the single-node total (each shard scored a third of the rows)
	// and must be positive.
	if got.Timeline.Total() <= 0 || got.Timeline.Total() > want.Timeline.Total() {
		t.Fatalf("merged timeline %v vs single-node %v", got.Timeline.Total(), want.Timeline.Total())
	}
}

func TestRouterBitIdenticalWhereAndAgg(t *testing.T) {
	r, single := newLocalRouter(t, 4, 300, router.Config{})
	whereSQL := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_ONNX', @where='petal_width < 1.5'"
	want, err := single.ExecQuery(whereSQL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Query(context.Background(), whereSQL, router.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Predictions) != len(want.Predictions) || len(got.ScoredRows) != len(want.ScoredRows) {
		t.Fatalf("filtered merge: %d/%d preds, %d/%d ordinals",
			len(got.Predictions), len(want.Predictions), len(got.ScoredRows), len(want.ScoredRows))
	}
	for i := range want.Predictions {
		if got.Predictions[i] != want.Predictions[i] || got.ScoredRows[i] != want.ScoredRows[i] {
			t.Fatalf("filtered row %d: (%d,%d) vs (%d,%d)", i,
				got.ScoredRows[i], got.Predictions[i], want.ScoredRows[i], want.Predictions[i])
		}
	}

	aggSQL := "SELECT prediction, COUNT(*) FROM PREDICT(@model='iris_rf', @data='iris', @backend='CPU_ONNX') GROUP BY prediction"
	wantAgg, err := single.ExecQuery(aggSQL)
	if err != nil {
		t.Fatal(err)
	}
	gotAgg, err := r.Query(context.Background(), aggSQL, router.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gotAgg.Table.NumRows() != wantAgg.Table.NumRows() {
		t.Fatalf("agg rows %d vs %d", gotAgg.Table.NumRows(), wantAgg.Table.NumRows())
	}
	for i, row := range wantAgg.Table.Rows() {
		grow := gotAgg.Table.Rows()[i]
		if grow[0].I != row[0].I || grow[1].I != row[1].I {
			t.Fatalf("agg row %d: (%d,%d) vs (%d,%d)", i, grow[0].I, grow[1].I, row[0].I, row[1].I)
		}
	}
}

func TestRouterTenantAffinity(t *testing.T) {
	r, single := newLocalRouter(t, 3, 200, router.Config{})
	want, err := single.ExecQuery(plainSQL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Query(context.Background(), plainSQL, router.QueryOptions{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 1 {
		t.Fatalf("tenant-affine query scattered to %d sub-queries", got.Shards)
	}
	for i := range want.Predictions {
		if got.Predictions[i] != want.Predictions[i] {
			t.Fatalf("tenant row %d: %d vs %d", i, got.Predictions[i], want.Predictions[i])
		}
	}
	home := pipeline.TenantShard("acme", 3)
	if home < 0 || home > 2 {
		t.Fatalf("tenant home shard %d", home)
	}
}

// failingBackend wraps a Backend, failing every Score call.
type failingBackend struct {
	router.Backend
}

func (f *failingBackend) Score(ctx context.Context, req router.Request) (*router.Result, error) {
	return nil, errors.New("shard killed")
}

// partitionKiller wraps a Backend, failing any sub-query for one specific
// partition — simulating a data shard whose rows are unreachable on every
// replica (so rerouting cannot save it), while other partitions succeed.
type partitionKiller struct {
	router.Backend
	part string
}

func (p *partitionKiller) Score(ctx context.Context, req router.Request) (*router.Result, error) {
	if req.Partition == p.part {
		return nil, errors.New("partition data unreachable")
	}
	return p.Backend.Score(ctx, req)
}

// TestRouterPartialShardFailure is the merge-correctness-under-failure
// check: a dead shard either fails the query with a typed PartialError
// (strict mode) or yields an explicit partial result whose surviving
// predictions are bit-identical to the single-node run — never zero-valued
// predictions spliced in.
func TestRouterPartialShardFailure(t *testing.T) {
	const n, rows = 3, 300
	backends := make([]router.Backend, n)
	for i := range backends {
		backends[i] = &router.Local{Name: fmt.Sprintf("shard-%d", i), Pipe: newShardPipeline(t, rows)}
	}
	// Kill shard 1 outright; with MaxReroutes at default every partition
	// still lands on a healthy replica, so first check pure rerouting.
	backends[1] = &failingBackend{Backend: backends[1]}
	r, err := router.New(router.Config{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	single := newShardPipeline(t, rows)
	want, err := single.ExecQuery(plainSQL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Query(context.Background(), plainSQL, router.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("reroutable failure degraded to partial despite healthy replicas")
	}
	if got.Reroutes == 0 {
		t.Fatal("dead shard's partition was not rerouted")
	}
	for i := range want.Predictions {
		if got.Predictions[i] != want.Predictions[i] {
			t.Fatalf("post-reroute row %d: %d vs %d", i, got.Predictions[i], want.Predictions[i])
		}
	}

	// Now kill ALL routes for partition 1's rows: every replica refuses
	// that partition, so no reroute can save it while partitions 0 and 2
	// still succeed. Strict mode => typed PartialError.
	allDead := make([]router.Backend, n)
	live := newShardPipeline(t, rows)
	for i := range allDead {
		allDead[i] = &partitionKiller{
			Backend: &router.Local{Name: fmt.Sprintf("shard-%d", i), Pipe: live},
			part:    "1/3",
		}
	}
	strict, err := router.New(router.Config{Backends: allDead, BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = strict.Query(context.Background(), plainSQL, router.QueryOptions{})
	var pe *exec.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("strict mode error = %v, want *exec.PartialError", err)
	}
	if len(pe.Missing) == 0 {
		t.Fatal("PartialError lists no missing partitions")
	}

	// Partial mode => explicit partial result, surviving rows exact.
	partial, err := router.New(router.Config{Backends: allDead, BreakerThreshold: -1, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := partial.Query(context.Background(), plainSQL, router.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.MissingPartitions) == 0 {
		t.Fatal("degraded query not marked partial")
	}
	if len(res.Predictions) == 0 || len(res.Predictions) >= len(want.Predictions) {
		t.Fatalf("partial result has %d predictions of %d", len(res.Predictions), len(want.Predictions))
	}
	if len(res.ScoredRows) != len(res.Predictions) {
		t.Fatal("partial result lost its scored-row ordinals")
	}
	missing := make(map[int]bool)
	for _, k := range res.MissingPartitions {
		missing[k] = true
	}
	for i, row := range res.ScoredRows {
		if missing[pipeline.RowShard(row, n)] {
			t.Fatalf("row %d belongs to a missing partition but has a prediction", row)
		}
		if res.Predictions[i] != want.Predictions[row] {
			t.Fatalf("partial row %d: %d, single-node %d — fabricated data",
				row, res.Predictions[i], want.Predictions[row])
		}
	}
	for row := range want.Predictions {
		if !missing[pipeline.RowShard(row, n)] {
			continue
		}
		for _, have := range res.ScoredRows {
			if have == row {
				t.Fatalf("row %d from a dead partition present in partial result", row)
			}
		}
	}
}

func TestRouterRejectsBadSQL(t *testing.T) {
	r, _ := newLocalRouter(t, 2, 100, router.Config{})
	for _, sql := range []string{
		"SELECT * FROM iris",
		"EXEC sp_other @model='x'",
		"EXEC sp_score_model @model='iris_rf', @data='iris', @partition='0/2'",
		"garbage",
	} {
		if _, err := r.Query(context.Background(), sql, router.QueryOptions{}); err == nil {
			t.Fatalf("router accepted %q", sql)
		}
	}
	// Unknown model: query-level error, never partial, never rerouted into
	// a breaker storm.
	_, err := r.Query(context.Background(),
		"EXEC sp_score_model @model='nope', @data='iris'", router.QueryOptions{})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	var pe *exec.PartialError
	if errors.As(err, &pe) {
		t.Fatalf("query-level error surfaced as PartialError: %v", err)
	}
	for i, state := range r.ShardStates() {
		if state != "closed" {
			t.Fatalf("query-level error charged shard %d breaker (%s)", i, state)
		}
	}
}

func TestRouterWarmFanOut(t *testing.T) {
	r, _ := newLocalRouter(t, 2, 100, router.Config{Obs: obs.NewObserver()})
	statuses := r.Warm(context.Background(), "iris_rf")
	if len(statuses) != 2 {
		t.Fatalf("%d warm statuses", len(statuses))
	}
	for _, s := range statuses {
		if s.Error != "" || s.Status != "miss" {
			t.Fatalf("cold warm status %+v, want miss", s)
		}
	}
	for _, s := range r.Warm(context.Background(), "iris_rf") {
		if s.Status != "hit" {
			t.Fatalf("second warm status %+v, want hit", s)
		}
	}
	if _, err := r.Query(context.Background(), plainSQL, router.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := r.Query(context.Background(), plainSQL, router.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("warmed shards missed the model cache")
	}
}

func TestRouterHandler(t *testing.T) {
	r, single := newLocalRouter(t, 3, 200, router.Config{Obs: obs.NewObserver()})
	srv := httptest.NewServer(router.Handler(r))
	defer srv.Close()

	want, err := single.ExecQuery(plainSQL)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/query", "text/plain", strings.NewReader(plainSQL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr router.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !qr.OK {
		t.Fatalf("HTTP %d, ok=%v err=%q", resp.StatusCode, qr.OK, qr.Error)
	}
	if qr.Shards != 3 || qr.Partial {
		t.Fatalf("shards=%d partial=%v", qr.Shards, qr.Partial)
	}
	if len(qr.Predictions) != len(want.Predictions) {
		t.Fatalf("%d predictions, want %d", len(qr.Predictions), len(want.Predictions))
	}
	for i := range want.Predictions {
		if qr.Predictions[i] != want.Predictions[i] {
			t.Fatalf("row %d: %d vs %d", i, qr.Predictions[i], want.Predictions[i])
		}
	}

	hz, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != 200 {
		t.Fatalf("healthz HTTP %d", hz.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Shards []struct {
			Shard   string `json:"shard"`
			Breaker string `json:"breaker"`
			OK      bool   `json:"ok"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Shards) != 3 {
		t.Fatalf("health %+v", health)
	}

	mt, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mt.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		obs.MetricRouterQueriesTotal, obs.MetricRouterScatterWidth,
		obs.MetricRouterStragglerGap, obs.MetricRouterShardLatency,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics exposition missing %s", want)
		}
	}

	bad, err := srv.Client().Get(srv.URL + "/query?sql=" + "SELECT%201")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Fatalf("non-scoring SQL got HTTP %d", bad.StatusCode)
	}
}
