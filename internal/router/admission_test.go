package router

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"accelscore/internal/obs"
)

func testClasses(t *testing.T) []obs.Objective {
	t.Helper()
	objs, err := obs.ParseSLOSpec("interactive=25ms,batch=500ms")
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

// TestAdmissionLedgerBalances checks the core accounting invariant on every
// class: offered == accepted + shed, and in-flight returns to zero.
func TestAdmissionLedgerBalances(t *testing.T) {
	a := newAdmission(&AdmissionConfig{MaxInFlight: 2}, 1, nil)
	ctx := context.Background()

	rel1, err := a.Admit(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Admit(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Admit(ctx, "")
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedCapacity {
		t.Fatalf("third admit at MaxInFlight=2 returned %v, want capacity shed", err)
	}
	if se.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v below the 1s floor", se.RetryAfter)
	}
	rel1(true, 10*time.Millisecond)
	rel2(false, 0)

	stats := a.Stats()
	if len(stats) != 1 {
		t.Fatalf("%d classes in ledger, want 1", len(stats))
	}
	s := stats[0]
	if s.Offered != 3 || s.Accepted != 2 || s.Shed != 1 {
		t.Fatalf("ledger %+v, want offered 3 = accepted 2 + shed 1", s)
	}
	if got := a.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight %d after releases, want 0", got)
	}
}

// TestAdmissionPrioritySheds fills the tier and checks the loose class
// (batch) sheds while the tight class (interactive) is still admitted.
func TestAdmissionPrioritySheds(t *testing.T) {
	a := newAdmission(&AdmissionConfig{MaxInFlight: 4, Classes: testClasses(t)}, 1, nil)
	ctx := context.Background()

	// batch is rank 1 of 2: its threshold is 4*(2-1)/2 = 2 in-flight.
	for i := 0; i < 2; i++ {
		if _, err := a.Admit(ctx, "batch"); err != nil {
			t.Fatalf("batch admit %d under threshold: %v", i, err)
		}
	}
	_, err := a.Admit(ctx, "batch")
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedPriority {
		t.Fatalf("batch at its threshold returned %v, want priority shed", err)
	}
	// Unknown classes rank with the loosest: shed at the same threshold.
	if _, err := a.Admit(ctx, "mystery"); !errors.As(err, &se) || se.Reason != ShedPriority {
		t.Fatalf("unknown class returned %v, want priority shed", err)
	}
	// interactive keeps the full budget.
	for i := 0; i < 2; i++ {
		if _, err := a.Admit(ctx, "interactive"); err != nil {
			t.Fatalf("interactive admit %d: %v", i, err)
		}
	}
	// Tier full: even interactive sheds now (capacity).
	if _, err := a.Admit(ctx, "interactive"); !errors.As(err, &se) || se.Reason != ShedCapacity {
		t.Fatalf("interactive at MaxInFlight returned %v, want capacity shed", err)
	}
}

// TestAdmissionDeadlineSheds seeds the latency predictor and checks a query
// whose remaining deadline is under the prediction is refused immediately
// with a Retry-After hint, while a roomy deadline is admitted.
func TestAdmissionDeadlineSheds(t *testing.T) {
	a := newAdmission(&AdmissionConfig{MaxInFlight: 8, EWMASeed: 100 * time.Millisecond}, 1, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := a.Admit(ctx, "")
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedDeadline {
		t.Fatalf("10ms deadline vs 100ms prediction returned %v, want deadline shed", err)
	}

	roomy, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	rel, err := a.Admit(roomy, "")
	if err != nil {
		t.Fatalf("roomy deadline refused: %v", err)
	}
	rel(true, 50*time.Millisecond)
	// EWMA moved toward the observation: (3*100ms + 50ms)/4 = 87.5ms.
	if got := a.predicted(); got != 87500*time.Microsecond {
		t.Fatalf("EWMA %v, want 87.5ms", got)
	}
}

// TestAdmissionConcurrentLedger hammers Admit/release from many goroutines
// under -race and checks the ledger still balances exactly.
func TestAdmissionConcurrentLedger(t *testing.T) {
	a := newAdmission(&AdmissionConfig{MaxInFlight: 4, Classes: testClasses(t)}, 2, nil)
	classes := []string{"interactive", "batch"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rel, err := a.Admit(context.Background(), classes[i%2])
				if err == nil {
					rel(i%3 == 0, time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	var offered, accepted, shed uint64
	for _, s := range a.Stats() {
		if s.Offered != s.Accepted+s.Shed {
			t.Fatalf("class %q ledger %+v out of balance", s.Class, s)
		}
		offered += s.Offered
		accepted += s.Accepted
		shed += s.Shed
	}
	if offered != 8*500 {
		t.Fatalf("offered %d, want %d", offered, 8*500)
	}
	if got := a.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight %d after drain, want 0", got)
	}
}

// TestAdmissionShardQueueFastFails fills a shard's slots and queue and
// checks the next sub-query fast-fails (rerouteable) instead of waiting.
func TestAdmissionShardQueueFastFails(t *testing.T) {
	a := newAdmission(&AdmissionConfig{MaxInFlight: 64, ShardInFlight: 1, ShardQueue: 1}, 1, nil)
	release, err := a.acquireShard(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The one queue slot: a waiter parked on the semaphore.
	waiting := make(chan error, 1)
	go func() {
		rel, err := a.acquireShard(context.Background(), 0)
		if err == nil {
			rel()
		}
		waiting <- err
	}()
	// Wait until the waiter occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for a.shardWait[0].Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full: the next acquire must fail fast, not block.
	if _, err := a.acquireShard(context.Background(), 0); err == nil {
		t.Fatal("acquire with a full queue should fast-fail")
	}
	release()
	if err := <-waiting; err != nil {
		t.Fatalf("parked waiter should win the freed slot: %v", err)
	}
}

// TestAdmissionNilIsNoOp checks a router without admission config admits
// everything.
func TestAdmissionNilIsNoOp(t *testing.T) {
	var a *admission
	rel, err := a.Admit(context.Background(), "any")
	if err != nil {
		t.Fatal(err)
	}
	rel(true, time.Millisecond)
	relS, err := a.acquireShard(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	relS()
	if a.Stats() != nil || a.predicted() != 0 {
		t.Fatal("nil admission should report empty stats")
	}
}
