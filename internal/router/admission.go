// Router admission control: the overload valve in front of the scatter.
// Three independent checks run at admission, before any shard sees the
// query — (1) a router-wide in-flight bound, (2) priority-class shedding
// (classes reuse the SLO objective machinery; looser-objective classes
// lose capacity first as the tier fills), and (3) deadline-aware shedding
// (a query whose remaining deadline is below the EWMA-predicted service
// time would only burn capacity to time out, so it is refused immediately
// with a Retry-After hint). Per-shard in-flight and queue bounds guard the
// scatter itself: a saturated shard fast-fails its sub-query so the
// dispatcher reroutes instead of queueing without bound.
package router

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accelscore/internal/obs"
)

// AdmissionConfig tunes the router's admission control. A nil config (on
// router Config) disables admission entirely.
type AdmissionConfig struct {
	// MaxInFlight is the router-wide concurrent-query bound (required,
	// >= 1). The priority thresholds scale off it.
	MaxInFlight int
	// ShardInFlight bounds concurrent sub-queries per shard (0 = no
	// per-shard bound); ShardQueue bounds waiters beyond that before a
	// sub-query fast-fails to reroute (default 2x ShardInFlight).
	ShardInFlight int
	ShardQueue    int
	// Classes are the priority classes (the PR 8 SLO objective spelling:
	// "interactive=25ms,batch=500ms"). The tightest objective is the
	// highest priority; a class with rank r of R is admitted only while
	// in-flight < MaxInFlight*(R-r)/R, so low-priority load sheds first.
	// Unknown or empty classes get the lowest priority.
	Classes []obs.Objective
	// EWMASeed seeds the predicted query latency before the first
	// observation (default 0: deadline shedding inactive until measured).
	EWMASeed time.Duration
}

// Shed reasons.
const (
	ShedCapacity = "capacity"
	ShedPriority = "priority"
	ShedDeadline = "deadline"
)

// ShedError is the admission-control rejection: the router refused the
// query before scattering it. Handlers map it to 503 with a Retry-After
// hint.
type ShedError struct {
	Class      string
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	cls := e.Class
	if cls == "" {
		cls = "default"
	}
	return fmt.Sprintf("router: admission rejected (%s, class %s), retry after %v",
		e.Reason, cls, e.RetryAfter)
}

// classCounters tracks one class's admission ledger.
type classCounters struct {
	offered  atomic.Uint64
	accepted atomic.Uint64
	shed     atomic.Uint64
}

// AdmissionStats is one class's ledger snapshot; Offered == Accepted +
// Shed always holds.
type AdmissionStats struct {
	Class    string `json:"class"`
	Rank     int    `json:"rank"`
	Offered  uint64 `json:"offered"`
	Accepted uint64 `json:"accepted"`
	Shed     uint64 `json:"shed"`
}

// admission is the router's admission controller.
type admission struct {
	cfg      AdmissionConfig
	inFlight atomic.Int64
	ewmaNS   atomic.Int64
	// classes sorted by objective latency ascending: index == priority
	// rank (0 = highest).
	classes []obs.Objective
	rank    map[string]int

	mu     sync.Mutex
	ledger map[string]*classCounters

	// Per-shard scatter bounds.
	shardSlots []chan struct{}
	shardWait  []atomic.Int64

	onShed func(class string)
}

// newAdmission builds the controller (nil cfg => nil controller; every
// method is nil-safe).
func newAdmission(cfg *AdmissionConfig, shards int, onShed func(class string)) *admission {
	if cfg == nil {
		return nil
	}
	c := *cfg
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 4 * shards
	}
	if c.ShardInFlight > 0 && c.ShardQueue <= 0 {
		c.ShardQueue = 2 * c.ShardInFlight
	}
	a := &admission{
		cfg:    c,
		rank:   make(map[string]int),
		ledger: make(map[string]*classCounters),
		onShed: onShed,
	}
	a.classes = append([]obs.Objective(nil), c.Classes...)
	sort.Slice(a.classes, func(i, j int) bool { return a.classes[i].Latency < a.classes[j].Latency })
	for i, o := range a.classes {
		a.rank[o.Class] = i
	}
	if c.EWMASeed > 0 {
		a.ewmaNS.Store(int64(c.EWMASeed))
	}
	if c.ShardInFlight > 0 {
		a.shardSlots = make([]chan struct{}, shards)
		a.shardWait = make([]atomic.Int64, shards)
		for i := range a.shardSlots {
			a.shardSlots[i] = make(chan struct{}, c.ShardInFlight)
		}
	}
	return a
}

// classRank returns the priority rank for class (lowest priority for
// unknown classes).
func (a *admission) classRank(class string) int {
	if r, ok := a.rank[class]; ok {
		return r
	}
	if len(a.classes) == 0 {
		return 0
	}
	return len(a.classes) - 1
}

// counters returns class's ledger, creating it on first use.
func (a *admission) counters(class string) *classCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.ledger[class]
	if c == nil {
		c = &classCounters{}
		a.ledger[class] = c
	}
	return c
}

// predicted returns the EWMA-predicted query latency (0 = unknown).
func (a *admission) predicted() time.Duration {
	if a == nil {
		return 0
	}
	return time.Duration(a.ewmaNS.Load())
}

// Admit decides one query at admission. On acceptance it returns a release
// closure the caller MUST invoke when the query finishes (ok=true feeds
// the latency into the EWMA predictor). On rejection it returns a typed
// *ShedError.
func (a *admission) Admit(ctx context.Context, class string) (release func(ok bool, latency time.Duration), err error) {
	if a == nil {
		return func(bool, time.Duration) {}, nil
	}
	cc := a.counters(class)
	cc.offered.Add(1)

	shed := func(reason string, retryAfter time.Duration) error {
		cc.shed.Add(1)
		if a.onShed != nil {
			a.onShed(class)
		}
		if retryAfter < time.Second {
			retryAfter = time.Second
		}
		return &ShedError{Class: class, Reason: reason, RetryAfter: retryAfter}
	}

	predicted := a.predicted()
	cur := a.inFlight.Load()
	if cur >= int64(a.cfg.MaxInFlight) {
		return nil, shed(ShedCapacity, predicted)
	}
	if n := len(a.classes); n > 0 {
		r := a.classRank(class)
		// Rank r of R keeps only the top (R-r)/R of capacity: the loosest
		// class sheds first, the tightest keeps the full budget.
		threshold := int64(a.cfg.MaxInFlight * (n - r) / n)
		if threshold < 1 {
			threshold = 1
		}
		if cur >= threshold {
			return nil, shed(ShedPriority, predicted)
		}
	}
	if dl, ok := ctx.Deadline(); ok && predicted > 0 {
		remaining := time.Until(dl)
		if remaining < predicted {
			return nil, shed(ShedDeadline, predicted-remaining)
		}
	}

	a.inFlight.Add(1)
	cc.accepted.Add(1)
	return func(ok bool, latency time.Duration) {
		a.inFlight.Add(-1)
		if !ok || latency <= 0 {
			return
		}
		// ewma = (3*prev + observed) / 4, seeded by the first observation.
		for {
			prev := a.ewmaNS.Load()
			next := int64(latency)
			if prev > 0 {
				next = (3*prev + int64(latency)) / 4
			}
			if a.ewmaNS.CompareAndSwap(prev, next) {
				return
			}
		}
	}, nil
}

// acquireShard bounds one shard's concurrent sub-queries. A full queue
// fast-fails (rerouteable) so the dispatcher moves the partition to a less
// loaded replica instead of queueing without bound.
func (a *admission) acquireShard(ctx context.Context, shard int) (func(), error) {
	if a == nil || a.cfg.ShardInFlight <= 0 {
		return func() {}, nil
	}
	if a.shardWait[shard].Add(1) > int64(a.cfg.ShardQueue) {
		a.shardWait[shard].Add(-1)
		return nil, fmt.Errorf("shard %d: sub-query queue full", shard)
	}
	defer a.shardWait[shard].Add(-1)
	select {
	case a.shardSlots[shard] <- struct{}{}:
		return func() { <-a.shardSlots[shard] }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats snapshots every class ledger, sorted by priority rank then name.
func (a *admission) Stats() []AdmissionStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]AdmissionStats, 0, len(a.ledger))
	for class, c := range a.ledger {
		out = append(out, AdmissionStats{
			Class:    class,
			Rank:     a.classRank(class),
			Offered:  c.offered.Load(),
			Accepted: c.accepted.Load(),
			Shed:     c.shed.Load(),
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Class < out[j].Class
	})
	return out
}
