package tensor

import (
	"testing"
	"testing/quick"

	"accelscore/internal/xrand"
)

func randomMatrix(r *xrand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float32()*2 - 1
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("bad values: %v", m.Data)
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set did not update value")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float32{{7, 8}, {9, 10}, {11, 12}})
	c := MatMul(a, b)
	want := FromRows([][]float32{{58, 64}, {139, 154}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := xrand.New(5)
	m := randomMatrix(r, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	got := MatMul(m, id)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("m*I != m at %d: %v vs %v", i, got.Data[i], m.Data[i])
		}
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := xrand.New(6)
	for trial := 0; trial < 20; trial++ {
		ar, ac, bc := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randomMatrix(r, ar, ac)
		b := randomMatrix(r, ac, bc)
		got := MatMul(a, b)
		for i := 0; i < ar; i++ {
			for j := 0; j < bc; j++ {
				var want float32
				for k := 0; k < ac; k++ {
					want += a.At(i, k) * b.At(k, j)
				}
				diff := got.At(i, j) - want
				if diff < -1e-4 || diff > 1e-4 {
					t.Fatalf("trial %d: (%d,%d) = %v, want %v", trial, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestFlopCount(t *testing.T) {
	if got := FlopCount(10, 20, 30); got != 2*10*20*30 {
		t.Fatalf("FlopCount = %d", got)
	}
}

func TestLessBroadcast(t *testing.T) {
	m := FromRows([][]float32{{1, 5}, {3, 2}})
	g := LessBroadcast(m, []float32{2, 3})
	want := []float32{1, 0, 0, 1}
	for i := range want {
		if g.Data[i] != want[i] {
			t.Fatalf("LessBroadcast = %v, want %v", g.Data, want)
		}
	}
}

func TestEqualBroadcast(t *testing.T) {
	m := FromRows([][]float32{{1, 0}, {1, 1}})
	g := EqualBroadcast(m, []float32{1, 1})
	want := []float32{1, 0, 1, 1}
	for i := range want {
		if g.Data[i] != want[i] {
			t.Fatalf("EqualBroadcast = %v, want %v", g.Data, want)
		}
	}
}

func TestAddAndScale(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{3, 4}})
	c := Add(a, b)
	if c.At(0, 0) != 4 || c.At(0, 1) != 6 {
		t.Fatalf("Add = %v", c.Data)
	}
	s := Scale(c, 0.5)
	if s.At(0, 0) != 2 || s.At(0, 1) != 3 {
		t.Fatalf("Scale = %v", s.Data)
	}
	AddInPlace(a, b)
	if a.At(0, 1) != 6 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromRows([][]float32{{0.1, 0.9, 0.5}, {2, 2, 1}, {-3, -1, -2}})
	got := ArgmaxRows(m)
	want := []int{1, 0, 1} // ties resolve to lowest index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgmaxRows = %v, want %v", got, want)
		}
	}
}

func TestRowSums(t *testing.T) {
	m := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	got := RowSums(m)
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("RowSums = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(10, 10).SizeBytes(); got != 400 {
		t.Fatalf("SizeBytes = %d, want 400", got)
	}
}

// Property: (a+b)*c == a*c + b*c within float tolerance.
func TestMatMulDistributive(t *testing.T) {
	r := xrand.New(8)
	f := func(seed uint8) bool {
		rr := xrand.New(uint64(seed) + 1)
		a := randomMatrix(rr, 3, 4)
		b := randomMatrix(rr, 3, 4)
		c := randomMatrix(rr, 4, 2)
		left := MatMul(Add(a, b), c)
		right := Add(MatMul(a, c), MatMul(b, c))
		for i := range left.Data {
			d := left.Data[i] - right.Data[i]
			if d < -1e-4 || d > 1e-4 {
				return false
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := xrand.New(1)
	a := randomMatrix(r, 128, 128)
	c := randomMatrix(r, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkLessBroadcast(b *testing.B) {
	r := xrand.New(2)
	m := randomMatrix(r, 1024, 28)
	row := make([]float32, 28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LessBroadcast(m, row)
	}
}
