// Package tensor implements a minimal dense float32 matrix library.
//
// It exists to support the Hummingbird-style GPU backend, which compiles
// decision forests into a sequence of matrix operations (see Nakandala et
// al., OSDI 2020, cited by the paper as [30]). Only the operations that the
// GEMM compilation strategy needs are provided: matrix multiply, broadcast
// comparison, element-wise ops, and argmax reductions. Everything is
// row-major and backed by a single flat slice so the simulated GPU can also
// reason about memory footprints.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// New returns a zero-initialized Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float32 {
	return m.Data[r*m.Cols+c]
}

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float32) {
	m.Data[r*m.Cols+c] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SizeBytes reports the memory footprint of the matrix payload.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.Data)) * 4
}

// MatMul returns a * b. It panics if the inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows of
	// b and out, which matters once the Hummingbird path multiplies
	// (records x features) by (features x internalNodes) matrices.
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// FlopCount returns the number of multiply-add operations a dense a*b GEMM
// performs; the GPU timing model uses it to charge simulated compute time.
func FlopCount(aRows, aCols, bCols int) int64 {
	return 2 * int64(aRows) * int64(aCols) * int64(bCols)
}

// LessBroadcast returns a matrix g where g[i][j] = 1 if m[i][j] < row[j],
// else 0. row must have length m.Cols. This implements Hummingbird's
// threshold-comparison step (inputs vs per-node split thresholds).
func LessBroadcast(m *Matrix, row []float32) *Matrix {
	if len(row) != m.Cols {
		panic(fmt.Sprintf("tensor: LessBroadcast row length %d != cols %d", len(row), m.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			if m.Data[base+j] < row[j] {
				out.Data[base+j] = 1
			}
		}
	}
	return out
}

// EqualBroadcast returns g where g[i][j] = 1 if m[i][j] == row[j], else 0.
// Hummingbird uses it to match the evaluated path vector against each leaf's
// expected path signature.
func EqualBroadcast(m *Matrix, row []float32) *Matrix {
	if len(row) != m.Cols {
		panic(fmt.Sprintf("tensor: EqualBroadcast row length %d != cols %d", len(row), m.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			if m.Data[base+j] == row[j] {
				out.Data[base+j] = 1
			}
		}
	}
	return out
}

// Add returns a + b element-wise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	mustSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale returns m scaled by s.
func Scale(m *Matrix, s float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
	return out
}

// ArgmaxRows returns, for each row, the column index of the maximal value.
// Ties resolve to the lowest index, matching the majority-vote tie-breaking
// rule used by the forest package.
func ArgmaxRows(m *Matrix) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		best := 0
		bestV := float32(math.Inf(-1))
		for j := 0; j < m.Cols; j++ {
			if v := m.Data[base+j]; v > bestV {
				bestV = v
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// RowSums returns the sum of each row.
func RowSums(m *Matrix) []float32 {
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		var s float32
		for j := 0; j < m.Cols; j++ {
			s += m.Data[base+j]
		}
		out[i] = s
	}
	return out
}

// Bincount tallies non-negative integer values into a histogram of at least
// minLength buckets, growing as needed — the batch aggregation primitive
// behind fused GROUP BY prediction when the backend returns materialized
// predictions instead of class counts. Negative values are ignored.
func Bincount(xs []int, minLength int) []int64 {
	out := make([]int64, minLength)
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x >= len(out) {
			grown := make([]int64, x+1)
			copy(grown, out)
			out = grown
		}
		out[x]++
	}
	return out
}

func mustSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
