package platform

import (
	"testing"
)

func TestNewWiresEverything(t *testing.T) {
	tb := New()
	if tb.SKLearn == nil || tb.ONNX1 == nil || tb.ONNX52 == nil ||
		tb.HB == nil || tb.RAPIDS == nil || tb.FPGA == nil {
		t.Fatal("engine missing")
	}
	if tb.Registry == nil || tb.Advisor == nil {
		t.Fatal("registry or advisor missing")
	}
	if got := len(tb.Registry.Names()); got != 6 {
		t.Fatalf("registry has %d backends", got)
	}
	if len(tb.Advisor.CPU) != 3 || len(tb.Advisor.Accelerators) != 3 {
		t.Fatalf("advisor split %d/%d", len(tb.Advisor.CPU), len(tb.Advisor.Accelerators))
	}
}

func TestBackendGroupings(t *testing.T) {
	tb := New()
	if got := len(tb.CPUBackends()); got != 3 {
		t.Fatalf("CPU backends = %d", got)
	}
	if got := len(tb.AcceleratorBackends()); got != 3 {
		t.Fatalf("accelerator backends = %d", got)
	}
	all := tb.AllBackends()
	if len(all) != 6 {
		t.Fatalf("all backends = %d", len(all))
	}
	// Display order: CPU first.
	if all[0].Name() != "CPU_SKLearn" || all[5].Name() != "FPGA" {
		t.Fatalf("display order wrong: %s .. %s", all[0].Name(), all[5].Name())
	}
}

func TestNamesMatchPaperFigures(t *testing.T) {
	tb := New()
	want := map[string]bool{
		"CPU_SKLearn": true, "CPU_ONNX": true, "CPU_ONNX_52th": true,
		"GPU_HB": true, "GPU_RAPIDS": true, "FPGA": true,
	}
	for _, b := range tb.AllBackends() {
		if !want[b.Name()] {
			t.Fatalf("unexpected backend name %q", b.Name())
		}
		delete(want, b.Name())
	}
	if len(want) != 0 {
		t.Fatalf("missing backends: %v", want)
	}
}

func TestIndependentInstances(t *testing.T) {
	a, b := New(), New()
	if err := a.Registry.Register(b.FPGA); err == nil {
		// Registering into a's registry under the same name must fail —
		// but only because the name collides within a, not because state
		// is shared.
		t.Fatal("duplicate name accepted")
	}
	if len(b.Registry.Names()) != 6 {
		t.Fatal("registries share state")
	}
}
