// Package platform assembles the paper's evaluation testbed: the six
// backends of Fig. 9/10 (CPU_SKLearn, CPU_ONNX, CPU_ONNX_52th, GPU_HB,
// GPU_RAPIDS, FPGA) wired to the calibrated hardware models, plus the
// offload advisor over them. Experiments, commands and examples all start
// here.
package platform

import (
	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/engines/cpuonnx"
	"accelscore/internal/engines/cpusk"
	"accelscore/internal/engines/fpga"
	"accelscore/internal/engines/gpu"
	"accelscore/internal/hw"
)

// Testbed bundles the paper's hardware configuration.
type Testbed struct {
	// The individual engines, exported so ablation harnesses can derive
	// variants.
	SKLearn  *cpusk.Engine
	ONNX1    *cpuonnx.Engine
	ONNX52   *cpuonnx.Engine
	HB       *gpu.Hummingbird
	RAPIDS   *gpu.RAPIDS
	FPGA     *fpga.Engine
	Registry *backend.Registry
	Advisor  *core.Advisor
}

// New builds the default testbed with the calibrated hardware models.
func New() *Testbed {
	cpu := hw.DefaultCPU()
	gpuSpec := hw.DefaultGPU()
	fpgaSpec := hw.DefaultFPGA()

	t := &Testbed{
		SKLearn: cpusk.New(cpu, cpu.HardwareThreads),
		ONNX1:   cpuonnx.New(cpu, 1),
		ONNX52:  cpuonnx.New(cpu, cpu.HardwareThreads),
		HB:      gpu.NewHummingbird(gpuSpec),
		RAPIDS:  gpu.NewRAPIDS(gpuSpec),
		FPGA:    fpga.New(fpgaSpec),
	}
	t.Registry = backend.NewRegistry()
	for _, b := range []backend.Backend{t.SKLearn, t.ONNX1, t.ONNX52, t.HB, t.RAPIDS, t.FPGA} {
		// Names are unique by construction; a duplicate is a programming
		// error worth crashing on during startup.
		if err := t.Registry.Register(b); err != nil {
			panic(err)
		}
	}
	t.Advisor = &core.Advisor{
		CPU:          []backend.Backend{t.SKLearn, t.ONNX1, t.ONNX52},
		Accelerators: []backend.Backend{t.HB, t.RAPIDS, t.FPGA},
	}
	return t
}

// CPUBackends returns the non-offloaded engines in display order.
func (t *Testbed) CPUBackends() []backend.Backend {
	return []backend.Backend{t.SKLearn, t.ONNX1, t.ONNX52}
}

// AcceleratorBackends returns the offloaded engines in display order.
func (t *Testbed) AcceleratorBackends() []backend.Backend {
	return []backend.Backend{t.HB, t.RAPIDS, t.FPGA}
}

// AllBackends returns every engine in display order.
func (t *Testbed) AllBackends() []backend.Backend {
	return append(t.CPUBackends(), t.AcceleratorBackends()...)
}
