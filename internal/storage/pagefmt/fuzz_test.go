package pagefmt

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPageDecode feeds arbitrary bytes to the page decoder. The invariants:
// never panic, never silently accept corrupted data (a successful decode
// must re-encode to the identical bytes), and failures are always one of the
// package's typed errors.
func FuzzPageDecode(f *testing.F) {
	// Valid pages of every column type as seeds.
	fp := Page{Type: Float32, ColIndex: 1, StartRow: 5, TableVersion: 3}
	for i := 0; i < 6; i++ {
		fp.Payload = AppendFloat32(fp.Payload, float32(i)*1.5)
	}
	fp.Rows = 6
	f.Add(fp.AppendTo(nil))

	ip := Page{Type: Int64, Rows: 3}
	for i := int64(-1); i <= 1; i++ {
		ip.Payload = AppendInt64(ip.Payload, i*1e12)
	}
	f.Add(ip.AppendTo(nil))

	tp := Page{Type: Text, Rows: 2}
	tp.Payload = AppendString(tp.Payload, "hello")
	tp.Payload = AppendString(tp.Payload, "")
	f.Add(tp.AppendTo(nil))

	bp := Page{Type: Blob, Rows: 1}
	bp.Payload = AppendBytes(bp.Payload, bytes.Repeat([]byte{0xEE}, 100))
	f.Add(bp.AppendTo(nil))

	f.Add([]byte("ACPG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, consumed, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrHeader) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// Round trip: a page the decoder accepts must re-encode bit-exactly.
		if got := p.AppendTo(nil); !bytes.Equal(got, data[:consumed]) {
			t.Fatalf("re-encode differs from accepted input")
		}
		// Every cell must decode without panicking or over-reading.
		cr := NewCellReader(p.Payload)
		for i := uint32(0); i < p.Rows; i++ {
			var cellErr error
			switch p.Type {
			case Float32:
				_, cellErr = cr.Float32()
			case Int64:
				_, cellErr = cr.Int64()
			default:
				_, cellErr = cr.Bytes()
			}
			if cellErr != nil && !errors.Is(cellErr, ErrPayload) {
				t.Fatalf("untyped cell error: %v", cellErr)
			}
			if cellErr != nil {
				break
			}
		}
	})
}

// FuzzFrameDecode exercises the frame armor the WAL and snapshot headers
// share.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, []byte("payload")))
	f.Add(AppendFrame(nil, nil))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, consumed, err := DecodeFrame(data, 1<<20)
		if err != nil {
			if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrFrameChecksum) && !errors.Is(err, ErrFrameTruncated) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		if consumed > len(data) || len(payload) != consumed-FrameOverhead {
			t.Fatalf("frame accounting: consumed=%d payload=%d", consumed, len(payload))
		}
	})
}
