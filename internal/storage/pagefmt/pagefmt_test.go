package pagefmt

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// buildPage encodes a float32 page with n sequential values.
func buildPage(t *testing.T, n int) []byte {
	t.Helper()
	p := Page{Type: Float32, ColIndex: 2, StartRow: 100, TableVersion: 7}
	for i := 0; i < n; i++ {
		p.Payload = AppendFloat32(p.Payload, float32(i)+0.5)
	}
	p.Rows = uint32(n)
	return p.AppendTo(nil)
}

func TestPageRoundTrip(t *testing.T) {
	enc := buildPage(t, 10)
	p, consumed, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if consumed != len(enc) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(enc))
	}
	if p.Type != Float32 || p.ColIndex != 2 || p.StartRow != 100 || p.TableVersion != 7 || p.Rows != 10 {
		t.Fatalf("header mismatch: %+v", p)
	}
	cr := NewCellReader(p.Payload)
	for i := 0; i < 10; i++ {
		v, err := cr.Float32()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if v != float32(i)+0.5 {
			t.Fatalf("cell %d = %v", i, v)
		}
	}
	if cr.Remaining() != 0 {
		t.Fatalf("%d trailing payload bytes", cr.Remaining())
	}
}

func TestPageVariableWidthRoundTrip(t *testing.T) {
	p := Page{Type: Blob, Rows: 3}
	p.Payload = AppendBytes(p.Payload, []byte("alpha"))
	p.Payload = AppendBytes(p.Payload, nil)
	p.Payload = AppendString(p.Payload, "gamma")
	enc := p.AppendTo(nil)
	back, _, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	cr := NewCellReader(back.Payload)
	for i, want := range []string{"alpha", "", "gamma"} {
		got, err := cr.Bytes()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("cell %d = %q, want %q", i, got, want)
		}
	}
}

func TestPageDecodeCorruption(t *testing.T) {
	enc := buildPage(t, 8)

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] = 'X'
		if _, _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, HeaderSize - 1, HeaderSize, len(enc) - 1} {
			if _, _, err := Decode(enc[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("bit-flip-payload", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[HeaderSize+3] ^= 0x40
		if _, _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("bit-flip-header", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[21] ^= 0x01 // StartRow byte: header CRC must catch it
		if _, _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("row-payload-mismatch", func(t *testing.T) {
		p := Page{Type: Float32, Rows: 5}
		p.Payload = AppendFloat32(nil, 1) // 1 cell, header claims 5
		if _, _, err := Decode(p.AppendTo(nil)); !errors.Is(err, ErrHeader) {
			t.Fatalf("want ErrHeader for row/payload mismatch")
		}
	})
	t.Run("unknown-type", func(t *testing.T) {
		p := Page{Type: ColType(9), Rows: 0}
		if _, _, err := Decode(p.AppendTo(nil)); !errors.Is(err, ErrHeader) {
			t.Fatalf("want ErrHeader for unknown type")
		}
	})
}

func TestReadPageFromStream(t *testing.T) {
	var stream []byte
	stream = append(stream, buildPage(t, 4)...)
	stream = append(stream, buildPage(t, 6)...)
	r := bytes.NewReader(stream)
	p1, err := ReadPage(r)
	if err != nil || p1.Rows != 4 {
		t.Fatalf("page 1: %v rows=%d", err, p1.Rows)
	}
	p2, err := ReadPage(r)
	if err != nil || p2.Rows != 6 {
		t.Fatalf("page 2: %v rows=%d", err, p2.Rows)
	}
	if _, err := ReadPage(r); !errors.Is(err, io.EOF) {
		t.Fatalf("expected io.EOF at stream end, got %v", err)
	}
	// A stream cut mid-page reports a torn page.
	if _, err := ReadPage(bytes.NewReader(stream[:HeaderSize+2])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn stream: %v", err)
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payload := []byte("hello frame")
	enc := AppendFrame(nil, payload)
	got, n, err := DecodeFrame(enc, 1<<20)
	if err != nil || n != len(enc) || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v n=%d got=%q", err, n, got)
	}
	if _, _, err := DecodeFrame(enc[:len(enc)-2], 1<<20); !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[FrameOverhead+1] ^= 0x10
	if _, _, err := DecodeFrame(bad, 1<<20); !errors.Is(err, ErrFrameChecksum) {
		t.Fatalf("bit flip: %v", err)
	}
	if _, _, err := DecodeFrame(enc, 4); !errors.Is(err, ErrFrame) {
		t.Fatalf("length cap: %v", err)
	}
}

func TestBuilderFlushesAtBudget(t *testing.T) {
	var pages []*Page
	var b Builder
	b.Reset(Float32, 0, 42, 16, func(p *Page) error {
		cp := *p
		cp.Payload = append([]byte(nil), p.Payload...)
		pages = append(pages, &cp)
		return nil
	})
	for i := 0; i < 10; i++ { // 40 payload bytes at budget 16 -> pages of 4 rows
		if err := b.AddFloat32(float32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("got %d pages, want 3", len(pages))
	}
	var rows uint64
	for _, p := range pages {
		if p.StartRow != rows {
			t.Fatalf("page start %d, want %d", p.StartRow, rows)
		}
		if p.TableVersion != 42 {
			t.Fatalf("page version %d", p.TableVersion)
		}
		rows += uint64(p.Rows)
	}
	if rows != 10 {
		t.Fatalf("pages cover %d rows", rows)
	}
}

func TestBuilderOversizedCellGetsOwnPage(t *testing.T) {
	var pages []*Page
	var b Builder
	b.Reset(Blob, 0, 0, 8, func(p *Page) error {
		cp := *p
		cp.Payload = append([]byte(nil), p.Payload...)
		pages = append(pages, &cp)
		return nil
	})
	big := bytes.Repeat([]byte{0xAB}, 64)
	if err := b.AddBytes([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBytes(big); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBytes([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("got %d pages, want 3 (small, oversized, small)", len(pages))
	}
	cr := NewCellReader(pages[1].Payload)
	got, err := cr.Bytes()
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("oversized cell round trip: %v", err)
	}
}

func TestCellReaderHostileInput(t *testing.T) {
	// Length prefix pointing past the payload must error, not over-read.
	payload := AppendBytes(nil, []byte("abc"))
	payload[0] = 200 // claim 200 bytes
	cr := NewCellReader(payload)
	if _, err := cr.Bytes(); !errors.Is(err, ErrPayload) {
		t.Fatalf("err = %v, want ErrPayload", err)
	}
	// NaN payloads round-trip bit-exactly.
	nan := math.Float32frombits(0x7fc00001)
	enc := AppendFloat32(nil, nan)
	v, err := NewCellReader(enc).Float32()
	if err != nil || math.Float32bits(v) != 0x7fc00001 {
		t.Fatalf("NaN round trip: %v bits=%x", err, math.Float32bits(v))
	}
}
