// Package pagefmt defines the binary on-disk column-page format shared by
// the database snapshot files and the write-ahead log (internal/storage).
//
// A page is one contiguous run of cells from a single column:
//
//	offset  size  field
//	0       4     magic "ACPG"
//	4       2     format version (little-endian uint16)
//	6       1     column type (ColType)
//	7       1     flags (reserved, must be zero)
//	8       4     column index within the table schema
//	12      4     row count in this page
//	16      4     payload length in bytes
//	20      8     first row index covered by this page
//	28      8     table version at serialization time
//	36      4     IEEE CRC32 over bytes [0,36) plus the payload
//	40      —     payload (cell encoding depends on the column type)
//
// Fixed-width cells (float32, int64) are packed little-endian with no
// per-cell framing, so a page of features is a straight memcpy away from the
// column-store → tensor conversion the scoring pipeline performs — the data
// pre-processing overhead the paper charges to every query. Variable-width
// cells (text, blob) are uvarint-length-prefixed.
//
// Every page carries its own checksum: a torn or bit-flipped page is
// detected at decode time and surfaces as a typed error, never as silently
// wrong data. The package is a leaf — it depends only on the standard
// library — so both internal/db (snapshot serialization) and
// internal/storage (WAL records) can share it without an import cycle.
package pagefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Format constants.
const (
	// Version is the current page format version.
	Version = 1
	// HeaderSize is the fixed encoded page header size in bytes.
	HeaderSize = 40
	// MaxPayload caps a single page's payload so a corrupt length field can
	// never drive a huge allocation. Oversized cells (a model blob bigger
	// than DefaultPayload) still fit: the cap is generous.
	MaxPayload = 1 << 28 // 256 MiB
	// DefaultPayload is the target payload size Builder flushes at.
	DefaultPayload = 32 << 10 // 32 KiB
)

var pageMagic = [4]byte{'A', 'C', 'P', 'G'}

// ColType enumerates the cell encodings a page can hold. The values mirror
// internal/db's ColumnType so conversion is a cast at the boundary.
type ColType uint8

// Supported column types.
const (
	Float32 ColType = 0
	Int64   ColType = 1
	Text    ColType = 2
	Blob    ColType = 3
)

// Valid reports whether t is a known column type.
func (t ColType) Valid() bool { return t <= Blob }

// Fixed returns the fixed cell width in bytes, or 0 for variable-width
// types.
func (t ColType) Fixed() int {
	switch t {
	case Float32:
		return 4
	case Int64:
		return 8
	default:
		return 0
	}
}

// Typed decode errors. Callers branch with errors.Is; decode never panics on
// hostile input and never returns silently wrong data.
var (
	// ErrBadMagic reports input that does not start with a page header.
	ErrBadMagic = errors.New("pagefmt: bad page magic")
	// ErrTruncated reports input shorter than its header claims.
	ErrTruncated = errors.New("pagefmt: truncated page")
	// ErrChecksum reports a CRC mismatch: the page bytes were corrupted.
	ErrChecksum = errors.New("pagefmt: page checksum mismatch")
	// ErrHeader reports a structurally invalid header (unknown version or
	// type, nonzero reserved flags, impossible lengths).
	ErrHeader = errors.New("pagefmt: invalid page header")
	// ErrPayload reports a payload that does not decode to the advertised
	// row count.
	ErrPayload = errors.New("pagefmt: invalid page payload")
)

// Page is one decoded (or to-be-encoded) column page.
type Page struct {
	Type         ColType
	ColIndex     uint32
	Rows         uint32
	StartRow     uint64
	TableVersion uint64
	Payload      []byte
}

// EncodedSize returns the total encoded size of the page.
func (p *Page) EncodedSize() int { return HeaderSize + len(p.Payload) }

// AppendTo appends the encoded page (header + payload) to dst.
func (p *Page) AppendTo(dst []byte) []byte {
	base := len(dst)
	dst = append(dst, pageMagic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	dst = append(dst, byte(p.Type), 0)
	dst = binary.LittleEndian.AppendUint32(dst, p.ColIndex)
	dst = binary.LittleEndian.AppendUint32(dst, p.Rows)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Payload)))
	dst = binary.LittleEndian.AppendUint64(dst, p.StartRow)
	dst = binary.LittleEndian.AppendUint64(dst, p.TableVersion)
	crc := crc32.NewIEEE()
	crc.Write(dst[base : base+36])
	crc.Write(p.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc.Sum32())
	return append(dst, p.Payload...)
}

// Decode parses one page from the front of data, returning the page and the
// number of bytes consumed. The returned payload aliases data.
func Decode(data []byte) (*Page, int, error) {
	if len(data) < HeaderSize {
		if len(data) >= 4 && [4]byte(data[:4]) != pageMagic {
			return nil, 0, ErrBadMagic
		}
		return nil, 0, ErrTruncated
	}
	if [4]byte(data[:4]) != pageMagic {
		return nil, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, 0, fmt.Errorf("%w: unknown version %d", ErrHeader, v)
	}
	p := &Page{
		Type:         ColType(data[6]),
		ColIndex:     binary.LittleEndian.Uint32(data[8:12]),
		Rows:         binary.LittleEndian.Uint32(data[12:16]),
		StartRow:     binary.LittleEndian.Uint64(data[20:28]),
		TableVersion: binary.LittleEndian.Uint64(data[28:36]),
	}
	if data[7] != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero reserved flags", ErrHeader)
	}
	if !p.Type.Valid() {
		return nil, 0, fmt.Errorf("%w: unknown column type %d", ErrHeader, data[6])
	}
	payloadLen := binary.LittleEndian.Uint32(data[16:20])
	if payloadLen > MaxPayload {
		return nil, 0, fmt.Errorf("%w: payload length %d exceeds cap", ErrHeader, payloadLen)
	}
	if w := p.Type.Fixed(); w != 0 && uint64(payloadLen) != uint64(p.Rows)*uint64(w) {
		return nil, 0, fmt.Errorf("%w: %d rows of width %d need %d payload bytes, header says %d",
			ErrHeader, p.Rows, w, uint64(p.Rows)*uint64(w), payloadLen)
	}
	if w := p.Type.Fixed(); w == 0 && uint64(payloadLen) < uint64(p.Rows) {
		// Every variable-width cell costs at least one length byte.
		return nil, 0, fmt.Errorf("%w: %d rows cannot fit in %d payload bytes", ErrHeader, p.Rows, payloadLen)
	}
	total := HeaderSize + int(payloadLen)
	if len(data) < total {
		return nil, 0, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(data[36:40])
	crc := crc32.NewIEEE()
	crc.Write(data[:36])
	crc.Write(data[HeaderSize:total])
	if crc.Sum32() != want {
		return nil, 0, ErrChecksum
	}
	p.Payload = data[HeaderSize:total]
	return p, total, nil
}

// ReadPage reads one page from r (e.g. a snapshot file stream).
func ReadPage(r io.Reader) (*Page, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[16:20])
	if payloadLen > MaxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds cap", ErrHeader, payloadLen)
	}
	buf := make([]byte, HeaderSize+int(payloadLen))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderSize:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	p, _, err := Decode(buf)
	return p, err
}

// --- Cell codecs ---

// AppendFloat32 appends a fixed-width float32 cell.
func AppendFloat32(dst []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
}

// AppendInt64 appends a fixed-width int64 cell.
func AppendInt64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

// AppendBytes appends a uvarint-length-prefixed variable-width cell (text or
// blob).
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString is AppendBytes for string cells without an intermediate copy.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// CellReader decodes a page payload sequentially.
type CellReader struct {
	data []byte
	off  int
}

// NewCellReader wraps a payload for sequential decoding.
func NewCellReader(payload []byte) *CellReader { return &CellReader{data: payload} }

// Remaining returns the number of undecoded bytes.
func (c *CellReader) Remaining() int { return len(c.data) - c.off }

// Float32 decodes the next fixed-width float32 cell.
func (c *CellReader) Float32() (float32, error) {
	if c.Remaining() < 4 {
		return 0, fmt.Errorf("%w: short float32 cell", ErrPayload)
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(c.data[c.off:]))
	c.off += 4
	return v, nil
}

// Int64 decodes the next fixed-width int64 cell.
func (c *CellReader) Int64() (int64, error) {
	if c.Remaining() < 8 {
		return 0, fmt.Errorf("%w: short int64 cell", ErrPayload)
	}
	v := int64(binary.LittleEndian.Uint64(c.data[c.off:]))
	c.off += 8
	return v, nil
}

// Bytes decodes the next variable-width cell. The result aliases the
// payload.
func (c *CellReader) Bytes() ([]byte, error) {
	n, sz := binary.Uvarint(c.data[c.off:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad cell length prefix", ErrPayload)
	}
	if n > uint64(c.Remaining()-sz) {
		return nil, fmt.Errorf("%w: cell length %d exceeds remaining payload", ErrPayload, n)
	}
	start := c.off + sz
	c.off = start + int(n)
	return c.data[start:c.off], nil
}

// String decodes the next variable-width cell as a string (copies).
func (c *CellReader) String() (string, error) {
	b, err := c.Bytes()
	return string(b), err
}

// --- Frames ---

// Frames wrap non-page metadata (file headers, table schemas, WAL records)
// in the same torn-write/corruption armor pages get:
//
//	length uint32 | crc32(payload) uint32 | payload
var (
	// ErrFrame reports a structurally invalid frame.
	ErrFrame = errors.New("pagefmt: invalid frame")
	// ErrFrameChecksum reports a frame whose payload fails its CRC.
	ErrFrameChecksum = errors.New("pagefmt: frame checksum mismatch")
	// ErrFrameTruncated reports a frame cut short (a torn write).
	ErrFrameTruncated = errors.New("pagefmt: truncated frame")
)

// FrameOverhead is the fixed per-frame framing cost in bytes.
const FrameOverhead = 8

// AppendFrame appends a length+CRC framed payload to dst.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// DecodeFrame parses one frame from the front of data, returning the payload
// (aliasing data) and the bytes consumed. maxLen bounds the accepted payload
// length so corrupt lengths cannot drive huge reads.
func DecodeFrame(data []byte, maxLen uint32) (payload []byte, consumed int, err error) {
	if len(data) < FrameOverhead {
		return nil, 0, ErrFrameTruncated
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > maxLen {
		return nil, 0, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrFrame, n, maxLen)
	}
	total := FrameOverhead + int(n)
	if len(data) < total {
		return nil, 0, ErrFrameTruncated
	}
	payload = data[FrameOverhead:total]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, 0, ErrFrameChecksum
	}
	return payload, total, nil
}

// ReadFrame reads one frame from r. io.EOF at a frame boundary is returned
// as io.EOF; a partial frame returns ErrFrameTruncated.
func ReadFrame(r io.Reader, maxLen uint32) ([]byte, error) {
	var hdr [FrameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrFrameTruncated
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxLen {
		return nil, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrFrame, n, maxLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrFrameTruncated
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrFrameChecksum
	}
	return payload, nil
}

// --- Builder ---

// Builder accumulates one column's cells and emits full pages as the payload
// budget fills, so serializing a table streams page by page instead of
// materializing the whole column. The zero Builder is not usable; call
// Reset. A Builder is reusable across columns to amortize buffer
// allocations.
type Builder struct {
	page       Page
	maxPayload int
	emit       func(*Page) error
}

// Reset prepares the builder for a new column. maxPayload <= 0 selects
// DefaultPayload.
func (b *Builder) Reset(typ ColType, colIndex uint32, tableVersion uint64, maxPayload int, emit func(*Page) error) {
	if maxPayload <= 0 {
		maxPayload = DefaultPayload
	}
	b.page = Page{
		Type:         typ,
		ColIndex:     colIndex,
		TableVersion: tableVersion,
		Payload:      b.page.Payload[:0],
	}
	b.maxPayload = maxPayload
	b.emit = emit
}

// flushIfFull emits the current page when the payload budget is exceeded.
func (b *Builder) flushIfFull() error {
	if len(b.page.Payload) < b.maxPayload {
		return nil
	}
	return b.Flush()
}

// Flush emits the in-progress page if it holds any rows.
func (b *Builder) Flush() error {
	if b.page.Rows == 0 {
		return nil
	}
	if err := b.emit(&b.page); err != nil {
		return err
	}
	b.page.StartRow += uint64(b.page.Rows)
	b.page.Rows = 0
	b.page.Payload = b.page.Payload[:0]
	return nil
}

// AddFloat32 appends one float32 cell.
func (b *Builder) AddFloat32(v float32) error {
	b.page.Payload = AppendFloat32(b.page.Payload, v)
	b.page.Rows++
	return b.flushIfFull()
}

// AddInt64 appends one int64 cell.
func (b *Builder) AddInt64(v int64) error {
	b.page.Payload = AppendInt64(b.page.Payload, v)
	b.page.Rows++
	return b.flushIfFull()
}

// AddBytes appends one variable-width cell. A cell larger than the page
// budget gets a page of its own rather than splitting.
func (b *Builder) AddBytes(v []byte) error {
	if len(b.page.Payload) > 0 && len(b.page.Payload)+len(v) > b.maxPayload {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	b.page.Payload = AppendBytes(b.page.Payload, v)
	b.page.Rows++
	return b.flushIfFull()
}

// AddString appends one text cell.
func (b *Builder) AddString(s string) error {
	if len(b.page.Payload) > 0 && len(b.page.Payload)+len(s) > b.maxPayload {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	b.page.Payload = AppendString(b.page.Payload, s)
	b.page.Rows++
	return b.flushIfFull()
}
