package storage

import (
	"errors"
	"testing"

	"accelscore/internal/db"
	"accelscore/internal/storage/pagefmt"
)

// validWALBytes builds a log containing every record kind, for fuzz seeds.
func validWALBytes() []byte {
	cols := []db.Column{
		{Name: "x", Type: db.Float32Col},
		{Name: "n", Type: db.Int64Col},
		{Name: "s", Type: db.TextCol},
		{Name: "b", Type: db.BlobCol},
	}
	rows := [][]db.Value{
		{db.Float(1.5), db.Int(-7), db.Text("hello"), db.Blob([]byte{1, 2})},
		{db.Float(2.5), db.Int(42), db.Text(""), db.Blob(nil)},
	}
	var out []byte
	out = pagefmt.AppendFrame(out, encodeCreateTable(1, "t", cols, rows))
	out = pagefmt.AppendFrame(out, encodeInsert(2, "t", cols, rows[:1]))
	out = pagefmt.AppendFrame(out, encodeUpdate(3, &db.UpdateStmt{
		Table: "t",
		Set:   map[string]db.Literal{"x": {N: 9.5}},
		Where: []db.Condition{{Column: "n", Op: ">", Value: db.Literal{N: 0}}},
	}))
	out = pagefmt.AppendFrame(out, encodeDelete(4, &db.DeleteStmt{
		Table: "t",
		Where: []db.Condition{{Column: "s", Op: "=", Value: db.Literal{IsString: true, S: "hello"}}},
	}))
	out = pagefmt.AppendFrame(out, encodeModelStore(5, "m", []byte("model-bytes")))
	out = pagefmt.AppendFrame(out, encodeModelDelete(6, "m"))
	return out
}

// FuzzWALReplay feeds arbitrary bytes through the full boot path: scan for
// the valid prefix, then replay every surviving record into a fresh
// database. Invariants: no panic on any input, scanning is prefix-stable
// (rescanning the accepted prefix accepts all of it), and record decoding
// failures are always the package's typed error.
func FuzzWALReplay(f *testing.F) {
	valid := validWALBytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped) // bit rot
	f.Add([]byte{})
	f.Add([]byte("not a log at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, prefix := scanWAL(data)
		if prefix < 0 || prefix > int64(len(data)) {
			t.Fatalf("scan accepted %d of %d bytes", prefix, len(data))
		}
		again, againPrefix := scanWAL(data[:prefix])
		if againPrefix != prefix || len(again) != len(records) {
			t.Fatalf("scan not prefix-stable: %d/%d records, %d/%d bytes",
				len(again), len(records), againPrefix, prefix)
		}
		// Replay must never panic; logical failures (e.g. an insert into a
		// table no surviving record created) are ordinary errors.
		d := db.New()
		for _, rec := range records {
			_ = applyRecord(d, rec)
		}
		// Direct record decoding on the raw input returns typed errors only.
		if _, err := decodeRecord(data); err != nil && !errors.Is(err, ErrRecord) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
