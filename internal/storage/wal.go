package storage

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"accelscore/internal/obs"
	"accelscore/internal/storage/pagefmt"
)

// SyncPolicy selects when the WAL reaches stable storage relative to the
// commit acknowledgement.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every commit returns: maximum durability,
	// one fsync per write.
	SyncAlways SyncPolicy = iota
	// SyncBatch is group commit: commits block until a shared flusher
	// fsyncs, so concurrent writers amortize one fsync across the batch.
	// Acknowledged writes are still crash-durable; only latency differs.
	SyncBatch
	// SyncNone never fsyncs on the commit path (the OS flushes when it
	// pleases). Fastest, but a crash can lose the unsynced suffix —
	// acknowledged writes included. Benchmarks only.
	SyncNone
)

// String returns the flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy maps a flag value to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always", "":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, batch, or none)", s)
	}
}

// ErrWALClosed reports an append after Close.
var ErrWALClosed = errors.New("storage: WAL closed")

// maxWALRecord bounds a single framed record (a CREATE TABLE record carries
// the table's initial rows, so the cap is generous).
const maxWALRecord = 1 << 30

// walMetrics are the observability hooks; any field may be nil.
type walMetrics struct {
	appends  *obs.Counter
	bytes    *obs.Counter
	fsyncs   *obs.Counter
	fsyncDur *obs.Histogram
	size     *obs.Gauge
}

// wal is the append-only log writer. Appends are serialized by mu; a sticky
// error poisons the writer after any I/O failure so no later commit is
// acknowledged against a log of unknown state.
type wal struct {
	mu      sync.Mutex
	cond    *sync.Cond // broadcast when synced advances or the writer dies
	f       *os.File
	path    string
	policy  SyncPolicy
	window  time.Duration
	scratch []byte

	size   int64 // bytes appended
	synced int64 // bytes known fsynced
	err    error // sticky
	closed bool

	flushCh chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	m walMetrics
}

// openWAL opens (creating if needed) the log at path, scans it for the
// valid record prefix, truncates any torn tail, and returns the writer plus
// the decoded records and how many trailing bytes were dropped.
//
// The scan treats the first invalid byte as end-of-log — the standard WAL
// convention: a torn tail can only exist at the point the crash interrupted
// the last write, so everything before the first bad frame is intact
// (each frame and record is CRC-checked and fully decoded).
func openWAL(path string, policy SyncPolicy, window time.Duration, m walMetrics) (*wal, []*record, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	records, valid := scanWAL(data)
	dropped := int64(len(data)) - valid
	if dropped > 0 {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("storage: dropping torn WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, 0, err
	}

	w := &wal{
		f:       f,
		path:    path,
		policy:  policy,
		window:  window,
		size:    valid,
		synced:  valid,
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
		m:       m,
	}
	w.cond = sync.NewCond(&w.mu)
	if w.window <= 0 {
		w.window = 2 * time.Millisecond
	}
	if policy == SyncBatch {
		w.wg.Add(1)
		go w.flusher()
	}
	if m.size != nil {
		m.size.Set(float64(valid))
	}
	return w, records, dropped, nil
}

// scanWAL decodes the longest valid record prefix of data. LSNs must be
// strictly increasing; a regression means the bytes are not a log we wrote.
func scanWAL(data []byte) ([]*record, int64) {
	var records []*record
	var off int64
	var lastLSN uint64
	for int(off) < len(data) {
		payload, consumed, err := pagefmt.DecodeFrame(data[off:], maxWALRecord)
		if err != nil {
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		if rec.lsn <= lastLSN {
			break
		}
		lastLSN = rec.lsn
		records = append(records, rec)
		off += int64(consumed)
	}
	return records, off
}

// Append frames and writes one record payload, then syncs according to the
// policy. When Append returns nil under SyncAlways or SyncBatch, the record
// is on stable storage.
func (w *wal) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrWALClosed
	}
	w.scratch = pagefmt.AppendFrame(w.scratch[:0], payload)
	n, err := w.f.Write(w.scratch)
	w.size += int64(n)
	if err != nil {
		w.err = fmt.Errorf("storage: WAL append: %w", err)
		w.cond.Broadcast()
		return w.err
	}
	if w.m.appends != nil {
		w.m.appends.Inc()
		w.m.bytes.Add(float64(n))
		w.m.size.Set(float64(w.size))
	}

	switch w.policy {
	case SyncNone:
		return nil
	case SyncAlways:
		if err := w.timedSync(); err != nil {
			w.err = fmt.Errorf("storage: WAL fsync: %w", err)
			w.cond.Broadcast()
			return w.err
		}
		w.synced = w.size
		return nil
	default: // SyncBatch: group commit
		target := w.size
		select {
		case w.flushCh <- struct{}{}:
		default: // a flush is already pending; it will cover us
		}
		for w.synced < target && w.err == nil && !w.closed {
			w.cond.Wait()
		}
		if w.err != nil {
			return w.err
		}
		if w.synced < target {
			return ErrWALClosed
		}
		return nil
	}
}

// flusher is the SyncBatch group-commit goroutine: on demand it waits one
// window (letting concurrent commits pile up), then fsyncs once for the
// whole batch.
func (w *wal) flusher() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case <-w.flushCh:
		}
		time.Sleep(w.window)
		w.mu.Lock()
		if w.err == nil && w.size > w.synced {
			if err := w.timedSync(); err != nil {
				w.err = fmt.Errorf("storage: WAL fsync: %w", err)
			} else {
				w.synced = w.size
			}
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// timedSync fsyncs the log file, charging the fsync counter and duration
// histogram on success. Callers hold w.mu.
func (w *wal) timedSync() error {
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.m.fsyncs != nil {
		w.m.fsyncs.Inc()
		w.m.fsyncDur.Observe(time.Since(t0).Seconds())
	}
	return nil
}

// Size returns bytes currently in the log.
func (w *wal) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// reset truncates the log to empty — called after a compaction snapshot has
// durably landed, making every logged record redundant.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = err
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		w.err = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	w.size, w.synced = 0, 0
	if w.m.size != nil {
		w.m.size.Set(0)
	}
	return nil
}

// Close fsyncs (unless SyncNone) and closes the log. Appends after Close
// fail with ErrWALClosed — a mutation can never be silently non-durable.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.done)
	var err error
	if w.err == nil && w.policy != SyncNone && w.size > w.synced {
		if err = w.timedSync(); err == nil {
			w.synced = w.size
		}
	}
	cerr := w.f.Close()
	if err == nil {
		err = cerr
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	return err
}
