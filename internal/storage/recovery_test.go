package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
)

// wop is one generated workload operation: either a DML statement (applied
// via the SQL layer, so the store path and the oracle path execute the
// identical code) or a model-store/model-delete call.
type wop struct {
	sql   string
	model string
	store bool
	blob  []byte
}

func (o wop) String() string {
	if o.sql != "" {
		return o.sql
	}
	if o.store {
		return "STORE MODEL " + o.model
	}
	return "DELETE MODEL " + o.model
}

// applyWop executes one op. A DeleteModel of a missing model is allowed to
// fail — it fails identically in the oracle, and writes no WAL record.
func applyWop(tb testing.TB, d *db.Database, op wop) {
	tb.Helper()
	if op.sql != "" {
		if _, _, err := d.Query(op.sql); err != nil {
			tb.Fatalf("%s: %v", op.sql, err)
		}
		return
	}
	if op.store {
		if err := d.StoreModelBlob(op.model, op.blob); err != nil {
			tb.Fatalf("store model %s: %v", op.model, err)
		}
		return
	}
	_ = d.DeleteModel(op.model)
}

// genOps builds a deterministic mixed workload from the seed.
func genOps(seed int64, n int) []wop {
	rng := rand.New(rand.NewSource(seed))
	fv := func() string { return fmt.Sprintf("%.2f", float64(rng.Intn(1000))/100) }
	var stored []string
	ops := make([]wop, 0, n)
	for i := 0; i < n; i++ {
		switch p := rng.Intn(100); {
		case p < 45: // INSERT of 1-2 rows
			rows := 1 + rng.Intn(2)
			sql := "INSERT INTO fleet VALUES "
			for r := 0; r < rows; r++ {
				if r > 0 {
					sql += ", "
				}
				sql += fmt.Sprintf("(%s, %s, %s, %s, %d)", fv(), fv(), fv(), fv(), rng.Intn(3))
			}
			ops = append(ops, wop{sql: sql})
		case p < 65: // UPDATE
			cols := []string{"sepal_length", "sepal_width", "petal_length", "petal_width"}
			set, where := cols[rng.Intn(len(cols))], cols[rng.Intn(len(cols))]
			ops = append(ops, wop{sql: fmt.Sprintf(
				"UPDATE fleet SET %s = %s WHERE %s > %s", set, fv(), where, fv())})
		case p < 78: // DELETE with a high threshold so the table survives
			ops = append(ops, wop{sql: fmt.Sprintf(
				"DELETE FROM fleet WHERE sepal_length > %.2f", 8.0+float64(rng.Intn(150))/100)})
		case p < 92: // model store
			name := fmt.Sprintf("m%d", i)
			blob := make([]byte, 8+rng.Intn(64))
			rng.Read(blob)
			stored = append(stored, name)
			ops = append(ops, wop{model: name, store: true, blob: blob})
		default: // model delete (sometimes of a missing name)
			name := "missing"
			if len(stored) > 0 && rng.Intn(4) > 0 {
				name = stored[rng.Intn(len(stored))]
			}
			ops = append(ops, wop{model: name})
		}
	}
	return ops
}

// seedFleet registers the iris dataset as the "fleet" table through the
// (possibly journaled) CreateTable path.
func seedFleet(tb testing.TB, d *db.Database) {
	tb.Helper()
	tbl, err := db.TableFromDataset("fleet", dataset.Iris())
	if err != nil {
		tb.Fatal(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		tb.Fatal(err)
	}
}

// TestCrashRecoveryAtEveryWALBoundary is the adversarial recovery harness:
// it runs a seeded workload against a journaled store, recording the WAL
// offset after every acknowledged op, then simulates a crash at every record
// boundary — plus torn mid-record writes (truncation) and flipped bits in
// the tail record — and asserts the recovered database equals a fault-free
// oracle holding exactly the acknowledged prefix: no acked op lost, no
// unacked op resurrected, and model predictions over the recovered table
// bit-identical to the oracle's.
func TestCrashRecoveryAtEveryWALBoundary(t *testing.T) {
	const seed, nOps = 7, 36
	dir := t.TempDir()
	s, d, err := Open(Config{Dir: dir, Sync: SyncAlways, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	seedFleet(t, d)
	ops := genOps(seed, nOps)
	// boundaries[i] is the WAL size once the first i ops are acknowledged
	// (boundaries[0] covers only the CREATE TABLE seeding).
	boundaries := []int64{s.WALSize()}
	for _, op := range ops {
		applyWop(t, d, op)
		boundaries = append(boundaries, s.WALSize())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walBytes)) != boundaries[len(boundaries)-1] {
		t.Fatalf("WAL is %d bytes, last boundary %d", len(walBytes), boundaries[len(boundaries)-1])
	}

	// The scoring model: predictions over recovered state must be
	// bit-identical to predictions over the oracle.
	scorer, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 8, Tree: forest.TrainConfig{MaxDepth: 6}, Seed: 1, Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	oracle := func(tb testing.TB, nOps int) *db.Database {
		od := db.New()
		seedFleet(tb, od)
		for _, op := range ops[:nOps] {
			applyWop(tb, od, op)
		}
		return od
	}

	// crashCheck boots a store from a mutated copy of the WAL and compares
	// against the oracle holding wantOps acknowledged ops.
	crashCheck := func(t *testing.T, wal []byte, wantOps int) {
		t.Helper()
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walFile), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, d2, err := Open(Config{Dir: cdir, Sync: SyncAlways, CompactBytes: -1})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer s2.Close()
		want := oracle(t, wantOps)
		requireSameState(t, want, d2)

		wt, err1 := want.Table("fleet")
		gt, err2 := d2.Table("fleet")
		if err1 != nil || err2 != nil {
			t.Fatalf("fleet table missing: %v %v", err1, err2)
		}
		if wt.NumRows() == 0 {
			return
		}
		wd, err := db.DatasetFromTable(wt)
		if err != nil {
			t.Fatal(err)
		}
		gd, err := db.DatasetFromTable(gt)
		if err != nil {
			t.Fatal(err)
		}
		wp, gp := scorer.PredictBatch(wd), scorer.PredictBatch(gd)
		if len(wp) != len(gp) {
			t.Fatalf("prediction count: %d vs %d", len(gp), len(wp))
		}
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("prediction %d diverged after recovery: %d vs %d", i, gp[i], wp[i])
			}
		}
	}

	for i := 0; i <= len(ops); i++ {
		off := boundaries[i]
		// Crash exactly at the record boundary: the acknowledged prefix
		// survives in full.
		t.Run(fmt.Sprintf("boundary-%02d", i), func(t *testing.T) {
			crashCheck(t, walBytes[:off], i)
		})
		if i == len(ops) {
			break
		}
		next := boundaries[i+1]
		if next == off {
			continue // op wrote no record (no-op UPDATE/DELETE, missing model)
		}
		mid := off + (next-off)/2
		if mid == off {
			mid = off + 1
		}
		// Torn write: the next record only partially reached disk. It must
		// be dropped, never half-applied or resurrected.
		t.Run(fmt.Sprintf("torn-%02d", i), func(t *testing.T) {
			crashCheck(t, walBytes[:mid], i)
		})
		// Bit rot / scribbled sector inside the tail record: the CRC must
		// catch it and recovery lands on the previous boundary.
		t.Run(fmt.Sprintf("bitflip-%02d", i), func(t *testing.T) {
			bad := append([]byte(nil), walBytes[:next]...)
			bad[mid] ^= 0x10
			crashCheck(t, bad, i)
		})
	}
}

// TestRecoveryScoresBitIdentically runs the whole workload, crashes cleanly
// at the end, and verifies the recovered store also serves the exact same
// predictions through a fresh scoring pass — the paper's concern that the
// storage path feeding the accelerator must not perturb the data.
func TestRecoveryScoresBitIdentically(t *testing.T) {
	dir := t.TempDir()
	s, d, err := Open(Config{Dir: dir, Sync: SyncBatch, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	seedFleet(t, d)
	for _, op := range genOps(11, 25) {
		applyWop(t, d, op)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, d2, err := Open(Config{Dir: dir, Sync: SyncAlways, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	scorer, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 16, Tree: forest.TrainConfig{MaxDepth: 8}, Seed: 3, Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := d.Table("fleet")
	t2, err := d2.Table("fleet")
	if err != nil {
		t.Fatal(err)
	}
	d1s, err := db.DatasetFromTable(t1)
	if err != nil {
		t.Fatal(err)
	}
	d2s, err := db.DatasetFromTable(t2)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := scorer.PredictBatch(d1s), scorer.PredictBatch(d2s)
	if len(p1) != len(p2) {
		t.Fatalf("prediction counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("prediction %d: pre-crash %d, post-recovery %d", i, p1[i], p2[i])
		}
	}
}
