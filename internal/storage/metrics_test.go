package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelscore/internal/obs"
)

// TestStoreMetricsExposition drives the store through writes, fsyncs, a
// compaction and a crash-window recovery, then scrapes the registry: every
// storage metric must be present, the skipped-records and fsync-duration
// instruments must have fired, the last-LSN gauge must track the store, and
// the whole exposition must pass the strict lint.
func TestStoreMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, d, err := Open(Config{Dir: dir, Sync: SyncAlways, CompactBytes: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	seedTable(t, d)
	for i := 0; i < 4; i++ {
		if _, _, err := d.Query(fmt.Sprintf("INSERT INTO obs VALUES (%d.5, %d)", i, i%2)); err != nil {
			t.Fatal(err)
		}
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash window: the snapshot landed but the WAL was never truncated, so
	// reopening must skip every record — and count the skips.
	if err := os.WriteFile(filepath.Join(dir, walFile), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(Config{Dir: dir, Sync: SyncAlways, CompactBytes: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		MetricWALAppendsTotal, MetricWALBytesTotal, MetricWALFsyncsTotal,
		MetricWALFsyncSeconds + "_bucket", MetricWALSizeBytes,
		MetricReplayRecordsTotal, MetricReplaySkippedTotal,
		MetricCompactionsTotal, MetricSnapshotBytes, MetricLastLSN,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %q", name)
		}
	}
	if v := reg.Counter(MetricReplaySkippedTotal, "").Value(); v == 0 {
		t.Error("crash-window reopen should count skipped records")
	}
	if v := reg.Counter(MetricWALFsyncsTotal, "").Value(); v == 0 {
		t.Error("SyncAlways writes should count fsyncs")
	}
	if got, want := reg.Gauge(MetricLastLSN, "").Value(), float64(s2.LastLSN()); got != want {
		t.Errorf("last-LSN gauge = %v, want %v", got, want)
	}
	if probs := obs.LintPrometheus(strings.NewReader(out)); len(probs) != 0 {
		msgs := make([]string, len(probs))
		for i, p := range probs {
			msgs[i] = p.String()
		}
		t.Errorf("storage exposition lints dirty:\n%s", strings.Join(msgs, "\n"))
	}
}
