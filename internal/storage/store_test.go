package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/obs"
)

// openStore opens a store in dir with auto-compaction disabled (tests drive
// compaction explicitly) and the given sync policy.
func openStore(t *testing.T, dir string, sync SyncPolicy) (*Store, *db.Database) {
	t.Helper()
	s, d, err := Open(Config{Dir: dir, Sync: sync, CompactBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, d
}

// seedTable registers a small populated table through the journaled path.
func seedTable(t *testing.T, d *db.Database) {
	t.Helper()
	tbl, err := db.NewTable("obs", []db.Column{
		{Name: "x", Type: db.Float32Col},
		{Name: "label", Type: db.Int64Col},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tbl.Insert([]db.Value{db.Float(float32(i)), db.Int(int64(i % 2))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
}

// requireSameState fails unless both databases hold identical tables and
// cells.
func requireSameState(t *testing.T, want, got *db.Database) {
	t.Helper()
	wn, gn := want.TableNames(), got.TableNames()
	if len(wn) != len(gn) {
		t.Fatalf("tables: got %v, want %v", gn, wn)
	}
	for _, name := range wn {
		wt, _ := want.Table(name)
		gt, err := got.Table(name)
		if err != nil {
			t.Fatalf("table %q missing", name)
		}
		wr, gr := wt.Rows(), gt.Rows()
		if len(wr) != len(gr) {
			t.Fatalf("table %q: %d rows, want %d", name, len(gr), len(wr))
		}
		for r := range wr {
			for c := range wr[r] {
				wv, gv := wr[r][c], gr[r][c]
				if wv.F != gv.F || wv.I != gv.I || wv.S != gv.S || !bytes.Equal(wv.B, gv.B) {
					t.Fatalf("table %q cell (%d,%d): %+v want %+v", name, r, c, gv, wv)
				}
			}
		}
	}
}

func TestStoreRecoversAllOps(t *testing.T) {
	dir := t.TempDir()
	s, d := openStore(t, dir, SyncAlways)
	seedTable(t, d)
	mustExec := func(sql string) {
		t.Helper()
		if _, _, err := d.Query(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("INSERT INTO obs VALUES (9.5, 1), (10.5, 0)")
	mustExec("UPDATE obs SET x = 99 WHERE label = 1")
	mustExec("DELETE FROM obs WHERE x < 2")
	if err := d.StoreModelBlob("m", []byte("blob-1")); err != nil {
		t.Fatal(err)
	}
	if err := d.StoreModelBlob("gone", []byte("blob-2")); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteModel("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, d2 := openStore(t, dir, SyncAlways)
	defer s2.Close()
	requireSameState(t, d, d2)
	ri := s2.Recovery()
	if ri.SnapshotLoaded || ri.ReplayedRecords == 0 || ri.DroppedWALBytes != 0 {
		t.Fatalf("recovery info: %+v", ri)
	}
	if blob, err := d2.LoadModelBlob("m"); err != nil || string(blob) != "blob-1" {
		t.Fatalf("model after recovery: %q, %v", blob, err)
	}
	if _, err := d2.LoadModelBlob("gone"); err == nil {
		t.Fatalf("deleted model resurrected")
	}
}

func TestStoreMutationsFailAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, d := openStore(t, dir, SyncAlways)
	seedTable(t, d)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Query("INSERT INTO obs VALUES (1.0, 1)"); err == nil {
		t.Fatalf("insert after Close should fail, not silently lose durability")
	}
}

func TestCompactionFoldsWALIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, d := openStore(t, dir, SyncAlways)
	seedTable(t, d)
	for i := 0; i < 10; i++ {
		if _, _, err := d.Query(fmt.Sprintf("INSERT INTO obs VALUES (%d.25, %d)", i, i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if s.WALSize() == 0 {
		t.Fatalf("expected a non-empty WAL before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.WALSize() != 0 {
		t.Fatalf("WAL not truncated after compaction: %d bytes", s.WALSize())
	}
	// Post-compaction writes land in the (now empty) WAL.
	if _, _, err := d.Query("INSERT INTO obs VALUES (777.5, 1)"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, d2 := openStore(t, dir, SyncAlways)
	defer s2.Close()
	requireSameState(t, d, d2)
	ri := s2.Recovery()
	if !ri.SnapshotLoaded {
		t.Fatalf("snapshot not loaded: %+v", ri)
	}
	if ri.ReplayedRecords != 1 {
		t.Fatalf("expected exactly the post-compaction insert to replay, got %+v", ri)
	}
}

// TestCompactionCrashWindowIsIdempotent covers the crash between snapshot
// rename and WAL truncation: the WAL still holds records the snapshot
// already folded in, and replay must skip them instead of double-applying.
func TestCompactionCrashWindowIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, d := openStore(t, dir, SyncAlways)
	seedTable(t, d)
	if _, _, err := d.Query("INSERT INTO obs VALUES (50.5, 1)"); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: restore the pre-compaction WAL alongside
	// the new snapshot.
	if err := os.WriteFile(filepath.Join(dir, walFile), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, d2 := openStore(t, dir, SyncAlways)
	defer s2.Close()
	requireSameState(t, d, d2)
	ri := s2.Recovery()
	if ri.ReplayedRecords != 0 || ri.SkippedRecords == 0 {
		t.Fatalf("stale WAL records must be skipped, not replayed: %+v", ri)
	}
}

func TestTornTailDroppedAndCounted(t *testing.T) {
	dir := t.TempDir()
	s, d := openStore(t, dir, SyncAlways)
	seedTable(t, d)
	if _, _, err := d.Query("INSERT INTO obs VALUES (5.5, 0)"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	clean, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Append garbage — a torn in-flight record the crash interrupted.
	torn := append(append([]byte(nil), clean...), 0xDE, 0xAD, 0xBE)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s2, d2, err := Open(Config{Dir: dir, Sync: SyncAlways, CompactBytes: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	requireSameState(t, d, d2)
	if ri := s2.Recovery(); ri.DroppedWALBytes != 3 {
		t.Fatalf("DroppedWALBytes = %d, want 3", ri.DroppedWALBytes)
	}
	// The truncation is persistent: the file holds only the valid prefix.
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("torn tail not truncated from the file")
	}
}

// TestGroupCommitConcurrentWriters drives SyncBatch from many goroutines;
// every acknowledged insert must survive a clean reopen. Run under -race
// this also exercises the flusher's synchronization.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s, d, err := Open(Config{Dir: dir, Sync: SyncBatch, SyncWindow: time.Millisecond, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	seedTable(t, d)
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sql := fmt.Sprintf("INSERT INTO obs VALUES (%d.5, %d)", g*1000+i, g%2)
				if _, _, err := d.Query(sql); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, d2 := openStore(t, dir, SyncAlways)
	defer s2.Close()
	tbl, err := d2.Table("obs")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.NumRows(); got != 5+writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", got, 5+writers*perWriter)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "": SyncAlways, "batch": SyncBatch, "none": SyncNone, "BATCH": SyncBatch,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatalf("bad policy accepted")
	}
}
