package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/obs"
	"accelscore/internal/storage/pagefmt"
)

// On-disk layout inside the data directory:
//
//	data.snap — compacted snapshot: magic "ACSTOR01" + frame{u64 lastLSN} +
//	            the db package's binary page snapshot. Written to a temp
//	            file, fsynced, then renamed, so a crash mid-compaction
//	            leaves the previous snapshot intact.
//	wal.log   — append-only record log. Records with LSN <= the snapshot's
//	            lastLSN are skipped on replay, which makes the crash window
//	            between snapshot rename and log truncation idempotent.
var storeMagic = [8]byte{'A', 'C', 'S', 'T', 'O', 'R', '0', '1'}

const (
	snapshotFile = "data.snap"
	walFile      = "wal.log"
	// DefaultCompactBytes triggers a compaction snapshot once the WAL
	// crosses this size.
	DefaultCompactBytes = 64 << 20
)

// Metric names the store publishes when Config.Metrics is set.
const (
	MetricWALAppendsTotal    = "accelscore_wal_appends_total"
	MetricWALBytesTotal      = "accelscore_wal_bytes_total"
	MetricWALFsyncsTotal     = "accelscore_wal_fsyncs_total"
	MetricWALFsyncSeconds    = "accelscore_wal_fsync_seconds"
	MetricWALSizeBytes       = "accelscore_wal_size_bytes"
	MetricReplayRecordsTotal = "accelscore_storage_replay_records_total"
	MetricReplaySkippedTotal = "accelscore_storage_replay_skipped_records_total"
	MetricReplayDroppedBytes = "accelscore_storage_replay_dropped_bytes_total"
	MetricCompactionsTotal   = "accelscore_storage_compactions_total"
	MetricSnapshotBytes      = "accelscore_storage_snapshot_bytes"
	MetricLastLSN            = "accelscore_storage_last_lsn"
)

// fsyncBuckets resolve the fsync latency range that matters for commit
// latency: tens of microseconds (page cache + NVMe) up to the hundreds of
// milliseconds a saturated disk can take.
var fsyncBuckets = []float64{
	5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
}

// ErrStoreCorrupt reports a data directory whose snapshot or WAL cannot be
// recovered.
var ErrStoreCorrupt = errors.New("storage: corrupt data directory")

// Config configures Open.
type Config struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Sync selects the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncWindow is the SyncBatch group-commit window (default 2ms).
	SyncWindow time.Duration
	// CompactBytes triggers compaction when the WAL exceeds it; 0 means
	// DefaultCompactBytes, negative disables auto-compaction (tests that
	// need stable WAL offsets rely on this).
	CompactBytes int64
	// Metrics, when set, receives WAL and recovery instrumentation.
	Metrics *obs.Registry
}

// RecoveryInfo describes what Open found and did.
type RecoveryInfo struct {
	// SnapshotLoaded is true when data.snap existed and was read.
	SnapshotLoaded bool
	// SnapshotLSN is the last LSN folded into the loaded snapshot.
	SnapshotLSN uint64
	// ReplayedRecords counts WAL records applied on top of the snapshot.
	ReplayedRecords int
	// SkippedRecords counts valid WAL records already covered by the
	// snapshot (the compaction crash window).
	SkippedRecords int
	// DroppedWALBytes counts torn-tail bytes truncated from the log.
	DroppedWALBytes int64
	// LastLSN is the highest LSN in the recovered state.
	LastLSN uint64
}

// Store is the durability engine: it implements db.Journal, persisting
// every acknowledged mutation to the WAL before it is applied, and folds
// the log into page-format snapshots as it grows.
type Store struct {
	cfg Config
	db  *db.Database
	wal *wal

	// gate quiesces writers during compaction: every journaled op holds the
	// read side (BeginOp/EndOp); Compact takes the write side, so the
	// snapshot it writes contains exactly the ops up to its LSN. Lock order
	// is gate before any db lock — Compact acquires db locks (via Save)
	// only while holding gate exclusively, and writers acquire gate before
	// d.mu / rowsMu.
	gate sync.RWMutex

	// logMu orders LSN assignment with WAL appends so file order equals
	// LSN order.
	logMu   sync.Mutex
	nextLSN uint64

	recovery RecoveryInfo

	compactMu   sync.Mutex // one compaction at a time
	compactions *obs.Counter
	snapBytes   *obs.Gauge
	lastLSN     *obs.Gauge
}

// Open recovers (or initializes) the data directory and returns the store
// with its database: snapshot loaded, WAL torn tail dropped, surviving
// records replayed, and the journal attached so subsequent mutations are
// durable. The returned database is ready to serve.
func Open(cfg Config) (*Store, *db.Database, error) {
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("storage: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = DefaultCompactBytes
	}

	var info RecoveryInfo
	d, snapLSN, loaded, err := loadSnapshot(filepath.Join(cfg.Dir, snapshotFile))
	if err != nil {
		return nil, nil, err
	}
	info.SnapshotLoaded = loaded
	info.SnapshotLSN = snapLSN

	var m walMetrics
	var replayRecords, replaySkipped, replayDropped, compactions *obs.Counter
	var snapBytes, lastLSNGauge *obs.Gauge
	if cfg.Metrics != nil {
		m = walMetrics{
			appends:  cfg.Metrics.Counter(MetricWALAppendsTotal, "WAL records appended."),
			bytes:    cfg.Metrics.Counter(MetricWALBytesTotal, "WAL bytes appended."),
			fsyncs:   cfg.Metrics.Counter(MetricWALFsyncsTotal, "WAL fsync calls."),
			fsyncDur: cfg.Metrics.Histogram(MetricWALFsyncSeconds, "WAL fsync duration.", fsyncBuckets),
			size:     cfg.Metrics.Gauge(MetricWALSizeBytes, "Current WAL file size."),
		}
		replayRecords = cfg.Metrics.Counter(MetricReplayRecordsTotal, "WAL records replayed at boot.")
		replaySkipped = cfg.Metrics.Counter(MetricReplaySkippedTotal,
			"Valid WAL records skipped at boot because the snapshot already covered them.")
		replayDropped = cfg.Metrics.Counter(MetricReplayDroppedBytes, "Torn-tail WAL bytes dropped at boot.")
		compactions = cfg.Metrics.Counter(MetricCompactionsTotal, "Compaction snapshots written.")
		snapBytes = cfg.Metrics.Gauge(MetricSnapshotBytes, "Size of the last compaction snapshot.")
		lastLSNGauge = cfg.Metrics.Gauge(MetricLastLSN, "Highest LSN assigned by the store.")
	}

	w, records, dropped, err := openWAL(filepath.Join(cfg.Dir, walFile), cfg.Sync, cfg.SyncWindow, m)
	if err != nil {
		return nil, nil, err
	}
	info.DroppedWALBytes = dropped
	if replayDropped != nil && dropped > 0 {
		replayDropped.Add(float64(dropped))
	}

	lastLSN := snapLSN
	for _, rec := range records {
		if rec.lsn <= snapLSN {
			info.SkippedRecords++
			continue
		}
		if err := applyRecord(d, rec); err != nil {
			w.Close()
			return nil, nil, fmt.Errorf("%w: replaying LSN %d: %v", ErrStoreCorrupt, rec.lsn, err)
		}
		info.ReplayedRecords++
		lastLSN = rec.lsn
	}
	if len(records) > 0 {
		if tail := records[len(records)-1].lsn; tail > lastLSN {
			lastLSN = tail
		}
	}
	info.LastLSN = lastLSN
	if replayRecords != nil && info.ReplayedRecords > 0 {
		replayRecords.Add(float64(info.ReplayedRecords))
	}
	if replaySkipped != nil && info.SkippedRecords > 0 {
		replaySkipped.Add(float64(info.SkippedRecords))
	}
	if lastLSNGauge != nil {
		lastLSNGauge.Set(float64(lastLSN))
	}

	s := &Store{
		cfg:         cfg,
		db:          d,
		wal:         w,
		nextLSN:     lastLSN + 1,
		recovery:    info,
		compactions: compactions,
		snapBytes:   snapBytes,
		lastLSN:     lastLSNGauge,
	}
	d.SetJournal(s)
	return s, d, nil
}

// loadSnapshot reads data.snap if present; otherwise returns a fresh db.
func loadSnapshot(path string) (*db.Database, uint64, bool, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return db.New(), 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := f.Read(magic[:]); err != nil || magic != storeMagic {
		return nil, 0, false, fmt.Errorf("%w: snapshot magic", ErrStoreCorrupt)
	}
	hdr, err := pagefmt.ReadFrame(f, 64)
	if err != nil || len(hdr) != 8 {
		return nil, 0, false, fmt.Errorf("%w: snapshot LSN header", ErrStoreCorrupt)
	}
	lsn := binary.LittleEndian.Uint64(hdr)
	d, err := db.Load(f)
	if err != nil {
		return nil, 0, false, fmt.Errorf("%w: snapshot body: %v", ErrStoreCorrupt, err)
	}
	return d, lsn, true, nil
}

// applyRecord replays one WAL record against the database. The journal is
// not attached yet, so nothing is re-logged.
func applyRecord(d *db.Database, rec *record) error {
	switch rec.kind {
	case opCreateTable:
		t, err := db.NewTable(rec.table, rec.cols)
		if err != nil {
			return err
		}
		if err := t.AppendRows(rec.rows); err != nil {
			return err
		}
		return d.CreateTable(t)
	case opInsert:
		t, err := d.Table(rec.table)
		if err != nil {
			return err
		}
		return t.AppendRows(rec.rows)
	case opUpdate:
		_, err := d.Update(rec.update)
		return err
	case opDelete:
		_, err := d.Delete(rec.del)
		return err
	case opModelStore:
		return d.StoreModelBlob(rec.model, rec.blob)
	case opModelDelete:
		return d.DeleteModel(rec.model)
	default:
		return fmt.Errorf("%w: op %d", ErrRecord, rec.kind)
	}
}

// Recovery reports what Open found.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// WALSize returns the current WAL length in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// LastLSN returns the highest LSN assigned so far.
func (s *Store) LastLSN() uint64 {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.nextLSN - 1
}

// BeginOp and EndOp implement db.Journal's operation bracket: the read side
// of the compaction gate, plus the post-op compaction check (which must run
// after the read lock is released, since Compact takes the write side).
func (s *Store) BeginOp() { s.gate.RLock() }

// EndOp releases the bracket and, if the WAL has outgrown its budget,
// compacts synchronously — the writer that crosses the threshold pays for
// the snapshot, which back-pressures write bursts naturally.
func (s *Store) EndOp() {
	s.gate.RUnlock()
	if s.cfg.CompactBytes > 0 && s.wal.Size() > s.cfg.CompactBytes {
		_ = s.Compact() // failure poisons the WAL; the next write reports it
	}
}

// log assigns the next LSN, encodes the record, and appends it.
func (s *Store) log(encode func(lsn uint64) []byte) error {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if err := s.wal.Append(encode(s.nextLSN)); err != nil {
		return err
	}
	if s.lastLSN != nil {
		s.lastLSN.Set(float64(s.nextLSN))
	}
	s.nextLSN++
	return nil
}

// LogCreateTable implements db.Journal.
func (s *Store) LogCreateTable(name string, cols []db.Column, rows [][]db.Value) error {
	return s.log(func(lsn uint64) []byte { return encodeCreateTable(lsn, name, cols, rows) })
}

// LogInsert implements db.Journal.
func (s *Store) LogInsert(table string, cols []db.Column, rows [][]db.Value) error {
	return s.log(func(lsn uint64) []byte { return encodeInsert(lsn, table, cols, rows) })
}

// LogUpdate implements db.Journal.
func (s *Store) LogUpdate(st *db.UpdateStmt) error {
	return s.log(func(lsn uint64) []byte { return encodeUpdate(lsn, st) })
}

// LogDelete implements db.Journal.
func (s *Store) LogDelete(st *db.DeleteStmt) error {
	return s.log(func(lsn uint64) []byte { return encodeDelete(lsn, st) })
}

// LogModelStore implements db.Journal.
func (s *Store) LogModelStore(name string, blob []byte) error {
	return s.log(func(lsn uint64) []byte { return encodeModelStore(lsn, name, blob) })
}

// LogModelDelete implements db.Journal.
func (s *Store) LogModelDelete(name string) error {
	return s.log(func(lsn uint64) []byte { return encodeModelDelete(lsn, name) })
}

// Compact writes a snapshot of the current database and truncates the WAL.
// Writers are quiesced for the duration (the gate), so the snapshot's LSN
// covers exactly the records it folds in. Crash-safety: the snapshot lands
// via write-temp + fsync + rename; a crash before the rename leaves the old
// snapshot + full WAL, a crash after it but before the truncation leaves
// the new snapshot + a WAL whose records are all <= the snapshot LSN and
// therefore skipped on replay.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.gate.Lock()
	defer s.gate.Unlock()

	s.logMu.Lock()
	lsn := s.nextLSN - 1
	s.logMu.Unlock()

	final := filepath.Join(s.cfg.Dir, snapshotFile)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = func() error {
		if _, err := f.Write(storeMagic[:]); err != nil {
			return err
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], lsn)
		if _, err := f.Write(pagefmt.AppendFrame(nil, hdr[:])); err != nil {
			return err
		}
		if err := s.db.Save(f); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: writing compaction snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.cfg.Dir); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	if s.compactions != nil {
		s.compactions.Inc()
	}
	if s.snapBytes != nil {
		if st, err := os.Stat(final); err == nil {
			s.snapBytes.Set(float64(st.Size()))
		}
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close quiesces writers and closes the WAL. The journal stays attached:
// any mutation after Close fails with ErrWALClosed instead of silently
// losing durability.
func (s *Store) Close() error {
	s.gate.Lock()
	defer s.gate.Unlock()
	return s.wal.Close()
}
