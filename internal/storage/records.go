// Package storage is the durability engine under internal/db: an
// append-only WAL of CRC-framed logical records plus periodic compacted
// snapshots in the binary column-page format. It implements db.Journal, so
// the db package stays storage-agnostic while every acknowledged mutation
// reaches disk before the caller sees success.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"accelscore/internal/db"
	"accelscore/internal/storage/pagefmt"
)

// WAL op kinds. The numbering is part of the on-disk format.
const (
	opCreateTable byte = 1
	opInsert      byte = 2
	opUpdate      byte = 3
	opDelete      byte = 4
	opModelStore  byte = 5
	opModelDelete byte = 6
)

// ErrRecord reports a WAL record whose frame verified but whose body does
// not decode — corruption the CRC happened to miss structurally, or a
// format from a future version.
var ErrRecord = errors.New("storage: malformed WAL record")

// record is one decoded WAL entry. kind selects which fields are set.
type record struct {
	lsn  uint64
	kind byte

	table string       // createTable, insert
	cols  []db.Column  // createTable
	rows  [][]db.Value // createTable, insert

	update *db.UpdateStmt
	del    *db.DeleteStmt

	model string // modelStore, modelDelete
	blob  []byte // modelStore
}

// Record payloads are `u64 LSN | u8 op | body`, wrapped in a pagefmt frame
// by the WAL writer. Cells are self-describing (a kind byte per cell), so a
// record validates completely without catalog context — which is what lets
// the boot-time scan find the torn tail before any replay happens.

func appendRecordHeader(dst []byte, lsn uint64, op byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	return append(dst, op)
}

func appendValue(dst []byte, v db.Value, typ db.ColumnType) []byte {
	dst = append(dst, byte(typ))
	switch typ {
	case db.Float32Col:
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v.F))
	case db.Int64Col:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	case db.TextCol:
		dst = pagefmt.AppendString(dst, v.S)
	default:
		dst = pagefmt.AppendBytes(dst, v.B)
	}
	return dst
}

func appendRows(dst []byte, cols []db.Column, rows [][]db.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	for _, row := range rows {
		for ci, v := range row {
			dst = appendValue(dst, v, cols[ci].Type)
		}
	}
	return dst
}

func appendLiteral(dst []byte, lit db.Literal) []byte {
	if lit.IsString {
		dst = append(dst, 1)
		return pagefmt.AppendString(dst, lit.S)
	}
	dst = append(dst, 0)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(lit.N))
}

func appendConditions(dst []byte, conds []db.Condition) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(conds)))
	for _, c := range conds {
		dst = pagefmt.AppendString(dst, c.Column)
		dst = pagefmt.AppendString(dst, c.Op)
		dst = appendLiteral(dst, c.Value)
	}
	return dst
}

func encodeCreateTable(lsn uint64, name string, cols []db.Column, rows [][]db.Value) []byte {
	dst := appendRecordHeader(nil, lsn, opCreateTable)
	dst = pagefmt.AppendString(dst, name)
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = pagefmt.AppendString(dst, c.Name)
		dst = append(dst, byte(c.Type))
	}
	return appendRows(dst, cols, rows)
}

func encodeInsert(lsn uint64, table string, cols []db.Column, rows [][]db.Value) []byte {
	dst := appendRecordHeader(nil, lsn, opInsert)
	dst = pagefmt.AppendString(dst, table)
	return appendRows(dst, cols, rows)
}

func encodeUpdate(lsn uint64, st *db.UpdateStmt) []byte {
	dst := appendRecordHeader(nil, lsn, opUpdate)
	dst = pagefmt.AppendString(dst, st.Table)
	// Map iteration order is random; the record must be deterministic.
	keys := make([]string, 0, len(st.Set))
	for k := range st.Set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = pagefmt.AppendString(dst, k)
		dst = appendLiteral(dst, st.Set[k])
	}
	return appendConditions(dst, st.Where)
}

func encodeDelete(lsn uint64, st *db.DeleteStmt) []byte {
	dst := appendRecordHeader(nil, lsn, opDelete)
	dst = pagefmt.AppendString(dst, st.Table)
	return appendConditions(dst, st.Where)
}

func encodeModelStore(lsn uint64, name string, blob []byte) []byte {
	dst := appendRecordHeader(nil, lsn, opModelStore)
	dst = pagefmt.AppendString(dst, name)
	return pagefmt.AppendBytes(dst, blob)
}

func encodeModelDelete(lsn uint64, name string) []byte {
	dst := appendRecordHeader(nil, lsn, opModelDelete)
	return pagefmt.AppendString(dst, name)
}

// recReader decodes record bodies with bounds checking on every read.
type recReader struct{ b []byte }

func (r *recReader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, ErrRecord
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *recReader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, ErrRecord
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *recReader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, ErrRecord
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *recReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, ErrRecord
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *recReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, ErrRecord
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

func (r *recReader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *recReader) value() (db.Value, db.ColumnType, error) {
	kind, err := r.u8()
	if err != nil {
		return db.Value{}, 0, err
	}
	typ := db.ColumnType(kind)
	var v db.Value
	switch typ {
	case db.Float32Col:
		bits, err := r.u32()
		if err != nil {
			return db.Value{}, 0, err
		}
		v.F = math.Float32frombits(bits)
	case db.Int64Col:
		u, err := r.u64()
		if err != nil {
			return db.Value{}, 0, err
		}
		v.I = int64(u)
	case db.TextCol:
		s, err := r.str()
		if err != nil {
			return db.Value{}, 0, err
		}
		v.S = s
	case db.BlobCol:
		b, err := r.bytes()
		if err != nil {
			return db.Value{}, 0, err
		}
		v.B = append([]byte(nil), b...)
	default:
		return db.Value{}, 0, fmt.Errorf("%w: unknown cell kind %d", ErrRecord, kind)
	}
	return v, typ, nil
}

func (r *recReader) rows() ([][]db.Value, error) {
	nrows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nrows == 0 {
		return nil, nil
	}
	// Every cell costs at least one kind byte, so the bounds below reject
	// fabricated counts before any large allocation happens. nrows is capped
	// first so the product cannot overflow.
	if ncols == 0 || ncols > 1<<16 || nrows > uint64(len(r.b)) || nrows*ncols > uint64(len(r.b)) {
		return nil, fmt.Errorf("%w: implausible row block %dx%d in %d bytes", ErrRecord, nrows, ncols, len(r.b))
	}
	rows := make([][]db.Value, nrows)
	for ri := range rows {
		row := make([]db.Value, ncols)
		for ci := range row {
			v, _, err := r.value()
			if err != nil {
				return nil, err
			}
			row[ci] = v
		}
		rows[ri] = row
	}
	return rows, nil
}

func (r *recReader) literal() (db.Literal, error) {
	flag, err := r.u8()
	if err != nil {
		return db.Literal{}, err
	}
	switch flag {
	case 1:
		s, err := r.str()
		return db.Literal{IsString: true, S: s}, err
	case 0:
		bits, err := r.u64()
		return db.Literal{N: math.Float64frombits(bits)}, err
	default:
		return db.Literal{}, fmt.Errorf("%w: bad literal flag %d", ErrRecord, flag)
	}
}

func (r *recReader) conditions() ([]db.Condition, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("%w: implausible condition count %d", ErrRecord, n)
	}
	out := make([]db.Condition, 0, n)
	for i := uint64(0); i < n; i++ {
		col, err := r.str()
		if err != nil {
			return nil, err
		}
		op, err := r.str()
		if err != nil {
			return nil, err
		}
		lit, err := r.literal()
		if err != nil {
			return nil, err
		}
		out = append(out, db.Condition{Column: col, Op: op, Value: lit})
	}
	return out, nil
}

// decodeRecord parses a framed record payload. Any structural problem
// returns an error wrapping ErrRecord; the function never panics on
// arbitrary input (FuzzWALReplay's contract).
func decodeRecord(payload []byte) (*record, error) {
	r := &recReader{b: payload}
	lsn, err := r.u64()
	if err != nil {
		return nil, err
	}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	rec := &record{lsn: lsn, kind: kind}
	switch kind {
	case opCreateTable:
		if rec.table, err = r.str(); err != nil {
			return nil, err
		}
		ncols, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ncols == 0 || ncols > 1<<16 || ncols*2 > uint64(len(r.b)) {
			return nil, fmt.Errorf("%w: implausible column count %d", ErrRecord, ncols)
		}
		rec.cols = make([]db.Column, 0, ncols)
		for i := uint64(0); i < ncols; i++ {
			name, err := r.str()
			if err != nil {
				return nil, err
			}
			kindByte, err := r.u8()
			if err != nil {
				return nil, err
			}
			typ := db.ColumnType(kindByte)
			if typ < db.Float32Col || typ > db.BlobCol {
				return nil, fmt.Errorf("%w: unknown column type %d", ErrRecord, kindByte)
			}
			rec.cols = append(rec.cols, db.Column{Name: name, Type: typ})
		}
		if rec.rows, err = r.rows(); err != nil {
			return nil, err
		}
		for _, row := range rec.rows {
			if len(row) != len(rec.cols) {
				return nil, fmt.Errorf("%w: row width %d for %d columns", ErrRecord, len(row), len(rec.cols))
			}
		}
	case opInsert:
		if rec.table, err = r.str(); err != nil {
			return nil, err
		}
		if rec.rows, err = r.rows(); err != nil {
			return nil, err
		}
	case opUpdate:
		st := &db.UpdateStmt{Set: map[string]db.Literal{}}
		if st.Table, err = r.str(); err != nil {
			return nil, err
		}
		nset, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nset > uint64(len(r.b)) {
			return nil, fmt.Errorf("%w: implausible SET count %d", ErrRecord, nset)
		}
		for i := uint64(0); i < nset; i++ {
			col, err := r.str()
			if err != nil {
				return nil, err
			}
			lit, err := r.literal()
			if err != nil {
				return nil, err
			}
			st.Set[col] = lit
		}
		if st.Where, err = r.conditions(); err != nil {
			return nil, err
		}
		rec.update = st
	case opDelete:
		st := &db.DeleteStmt{}
		if st.Table, err = r.str(); err != nil {
			return nil, err
		}
		if st.Where, err = r.conditions(); err != nil {
			return nil, err
		}
		rec.del = st
	case opModelStore:
		if rec.model, err = r.str(); err != nil {
			return nil, err
		}
		blob, err := r.bytes()
		if err != nil {
			return nil, err
		}
		rec.blob = append([]byte(nil), blob...)
	case opModelDelete:
		if rec.model, err = r.str(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrRecord, kind)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrRecord, len(r.b))
	}
	return rec, nil
}
