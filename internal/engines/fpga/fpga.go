// Package fpga simulates the paper's FPGA random-forest inference engine
// (§III-B, Fig. 5): 128 processing elements, each evaluating one tree held
// in BRAM tree memory in the Fig. 4b node layout, a majority-voting unit,
// result memory, CSR-based setup, interrupt-based completion, and a PCIe 3.0
// x16 host interface whose record streaming overlaps with scoring.
//
// The simulator is functional — PEs really walk the dense node words — and
// cycle-counted: scoring time comes from the issue-rate model in hw.FPGASpec
// and every offload component of Fig. 7 appears as a named span.
package fpga

import (
	"fmt"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/faults"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/kernel"
	"accelscore/internal/model"
	"accelscore/internal/sim"
)

// Engine is the FPGA inference-engine backend.
type Engine struct {
	spec hw.FPGASpec
	// overlapStreaming enables the record-stream/compute overlap of §IV-B
	// item 1 (default on; ablation turns it off).
	overlapStreaming bool
	// spillPenalty multiplies the initiation interval when tree memories do
	// not fit BRAM and must spill to device DRAM (the BRAM-residency
	// ablation; the production configuration always fits).
	spillPenalty float64
	// hybridCPU, when non-nil, enables the §III-B extension: trees deeper
	// than the PE limit are evaluated to depth MaxTreeDepth on the FPGA and
	// finished on the CPU.
	hybridCPU        *hw.CPUSpec
	hybridCPUThreads int
}

// New returns an FPGA engine with the given hardware description.
func New(spec hw.FPGASpec) *Engine {
	return &Engine{spec: spec, overlapStreaming: true, spillPenalty: 4}
}

// WithoutOverlap disables record-stream/compute overlap (ablation).
func (e *Engine) WithoutOverlap() *Engine {
	c := *e
	c.overlapStreaming = false
	return &c
}

// WithBRAMBytes returns a copy with a different BRAM budget (used by the
// BRAM-residency ablation to force spilling).
func (e *Engine) WithBRAMBytes(bytes int64) *Engine {
	c := *e
	c.spec.BRAMBytes = bytes
	return &c
}

// WithDeepTreeFallback enables the hybrid FPGA+CPU mode for trees deeper
// than the PE limit: the FPGA evaluates the first MaxTreeDepth levels and
// ships intermediate node ids back for the CPU to finish (§III-B).
func (e *Engine) WithDeepTreeFallback(cpu hw.CPUSpec, threads int) *Engine {
	c := *e
	c.hybridCPU = &cpu
	if threads <= 0 {
		threads = cpu.HardwareThreads
	}
	c.hybridCPUThreads = threads
	return &c
}

// Name implements backend.Backend.
func (e *Engine) Name() string { return "FPGA" }

// Spec returns the engine's hardware description.
func (e *Engine) Spec() hw.FPGASpec { return e.spec }

// Score implements backend.Backend.
func (e *Engine) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	stats := req.ModelStats()
	hybrid := stats.MaxDepth > e.spec.MaxTreeDepth
	if hybrid && e.hybridCPU == nil {
		return nil, fmt.Errorf("fpga: tree depth %d exceeds the %d-level PE limit; deep trees must be processed by the CPU (§III-B) — enable WithDeepTreeFallback",
			stats.MaxDepth, e.spec.MaxTreeDepth)
	}
	if req.Forest.Kind != forest.Classifier {
		return nil, fmt.Errorf("fpga: the majority-voting unit supports classifiers only")
	}
	// O boundary: CSR setup and the host-side FPGA API calls.
	if err := req.Boundary(e.Name(), faults.BoundaryInvoke); err != nil {
		return nil, err
	}
	// L boundary: model load into PE tree memories + record stream.
	if err := req.Boundary(e.Name(), faults.BoundaryTransfer); err != nil {
		return nil, err
	}
	// C boundary: the PE array walk.
	if err := req.Boundary(e.Name(), faults.BoundaryCompute); err != nil {
		return nil, err
	}

	n := req.Data.NumRecords()
	scored := req.NumScored()
	preds := make([]int, scored)
	if hybrid {
		// Functional result of FPGA-to-depth-10 plus CPU completion equals
		// the full tree walk.
		if req.Sel != nil {
			req.Sel.ForEach(func(row, rank int) {
				preds[rank] = req.Forest.PredictClass(req.Data.Row(row))
			})
		} else {
			for i := 0; i < n; i++ {
				preds[i] = req.Forest.PredictClass(req.Data.Row(i))
			}
		}
	} else {
		dense, err := model.CompileDense(req.Forest, e.spec.MaxTreeDepth)
		if err != nil {
			return nil, fmt.Errorf("fpga: %w", err)
		}
		if err := e.scoreDense(dense, req.Data, req.Sel, preds); err != nil {
			return nil, err
		}
	}

	tl, err := e.Estimate(stats, int64(scored))
	if err != nil {
		return nil, err
	}
	res := &backend.Result{Predictions: preds}
	res.Timeline.Extend(tl)
	return res, nil
}

// scoreDense runs the PE array functionally: trees are loaded into PE tree
// memories in passes of at most ProcessingElements trees; each record is
// issued to every loaded PE and the votes accumulate in result memory. A
// pushed-down selection drops dead rows before they are issued, so result
// memory only ever holds survivors.
func (e *Engine) scoreDense(dense *model.Dense, data *dataset.Dataset, sel *kernel.Selection, preds []int) error {
	n := data.NumRecords()
	scored := n
	if sel != nil {
		scored = sel.Count()
	}
	votes := make([][]int, scored)
	for i := range votes {
		votes[i] = make([]int, dense.NumClasses)
	}
	passes := e.spec.Passes(dense.Trees)
	for p := 0; p < passes; p++ {
		lo := p * e.spec.ProcessingElements
		hi := lo + e.spec.ProcessingElements
		if hi > dense.Trees {
			hi = dense.Trees
		}
		// "Before starting the ML scoring, all the model information (tree
		// nodes) are transferred into the tree memory of each processing
		// element" — simulate the load by copying the node words into the
		// per-PE memories and evaluating from those.
		treeMem := make([][]model.DenseNode, hi-lo)
		for t := lo; t < hi; t++ {
			treeMem[t-lo] = append([]model.DenseNode(nil), dense.TreeSlice(t)...)
		}
		issue := func(i, slot int) {
			row := data.Row(i)
			for pe := range treeMem {
				votes[slot][model.WalkNodes(treeMem[pe], row)]++
			}
		}
		if sel != nil {
			sel.ForEach(issue)
		} else {
			for i := 0; i < n; i++ {
				issue(i, i)
			}
		}
	}
	// Majority-voting unit.
	for i := range preds {
		preds[i] = forest.Argmax(votes[i])
	}
	return nil
}

// Estimate implements backend.Backend, producing the Fig. 7 component
// breakdown.
func (e *Engine) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	if records < 0 {
		return nil, fmt.Errorf("fpga: negative record count %d", records)
	}
	hybrid := stats.MaxDepth > e.spec.MaxTreeDepth
	if hybrid && e.hybridCPU == nil {
		return nil, fmt.Errorf("fpga: tree depth %d exceeds the %d-level PE limit",
			stats.MaxDepth, e.spec.MaxTreeDepth)
	}

	var tl sim.Timeline
	passes := e.spec.Passes(stats.Trees)
	perTreeBytes := e.spec.TreeMemoryBytes(e.spec.MaxTreeDepth)
	_, fits := e.spec.ModelFits(stats.Trees, e.spec.MaxTreeDepth)

	remaining := stats.Trees
	for p := 0; p < passes; p++ {
		resident := remaining
		if resident > e.spec.ProcessingElements {
			resident = e.spec.ProcessingElements
		}
		remaining -= resident

		// 1) Input transfer: the model load into PE tree memories. Record
		//    streaming is charged inside the overlapped scoring phase.
		modelBytes := int64(resident) * perTreeBytes
		tl.Add("input transfer", sim.KindTransfer,
			e.spec.ModelTransferFixed+e.spec.Link.StreamTime(modelBytes))
		// 2) FPGA setup via CSRs.
		tl.Add("FPGA setup", sim.KindOverhead, e.spec.CSRSetup)
		// 3) Scoring, overlapped with the record stream. When the tree
		//    memories do not fit BRAM they spill to device DRAM and the
		//    issue rate degrades by spillPenalty (BRAM-residency ablation;
		//    the default configuration always fits, §IV-C1).
		scoring := e.spec.ScoringTime(records, resident)
		if !fits {
			scoring = time.Duration(float64(scoring) * e.spillPenalty)
		}
		streamBytes := records * int64(stats.Features) * dataset.BytesPerValue
		stream := sim.Span{Name: "record stream", Kind: sim.KindTransfer, Duration: e.spec.Link.StreamTime(streamBytes)}
		score := sim.Span{Name: "scoring", Kind: sim.KindCompute, Duration: scoring}
		if e.overlapStreaming {
			tl.Overlapped(score, stream)
		} else {
			tl.AddSpan(stream)
			tl.AddSpan(score)
		}
		// 4) Completion signal (interrupt).
		tl.Add("completion signal", sim.KindOverhead, e.spec.InterruptLatency)
		// 5) Result transfer. The result memory is a bounded BRAM region
		//    (Fig. 5); batches whose results exceed it are drained in
		//    chunks, each paying the DMA fixed cost.
		resultBytes := records * 4
		if hybrid {
			// Intermediate node ids for every (record, tree) pair go back
			// to the host for CPU completion.
			resultBytes = records * int64(resident) * 4
		}
		drains := int64(1)
		if e.spec.ResultMemoryBytes > 0 {
			drains = (resultBytes + e.spec.ResultMemoryBytes - 1) / e.spec.ResultMemoryBytes
			if drains < 1 {
				drains = 1
			}
		}
		tl.Add("result transfer", sim.KindTransfer,
			time.Duration(drains)*e.spec.ResultTransferFixed+e.spec.Link.StreamTime(resultBytes))
		// 6) Software overhead of the host-side FPGA API calls.
		tl.Add("software overhead", sim.KindOverhead, e.spec.SoftwareOverhead)
	}

	if hybrid {
		// CPU finishes levels beyond MaxTreeDepth (§III-B extension).
		extraDepth := stats.AvgPathLength - float64(e.spec.MaxTreeDepth)
		if extraDepth < 1 {
			extraDepth = 1
		}
		visits := int64(float64(records) * float64(stats.Trees) * extraDepth)
		cpuTime := e.hybridCPU.SKLearnScoringTime(visits, stats.Features, e.hybridCPUThreads)
		tl.Add("CPU deep-level completion", sim.KindCompute, cpuTime)
	}
	return &tl, nil
}
