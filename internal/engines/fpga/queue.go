package fpga

import (
	"fmt"
	"sync"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/sim"
)

// QueueManager models the multi-context host interface of §III-B: "our
// system architecture supports multi-threaded ML scoring contexts with
// custom PCIe interface and queue managements [HEAX, ref 34]. We can spawn
// as many threads as required to process all the input records."
//
// Multiple host threads submit scoring requests concurrently; the manager
// serializes them onto the single PE array (FIFO), overlapping each
// request's host-side software overhead with the previous request's device
// execution. Functionally every request is scored exactly; the simulated
// clock advances per the queue discipline, so concurrent submitters observe
// queueing delay and the device observes near-100% utilization under load.
type QueueManager struct {
	engine *Engine

	mu sync.Mutex
	// deviceFree is the simulated time at which the PE array frees up.
	deviceFree time.Duration
	// now is the simulated submission clock; each Submit advances it by the
	// caller-provided inter-arrival gap.
	now time.Duration
	// stats
	submitted int
	busy      time.Duration
}

// NewQueueManager wraps an engine with the multi-context queue.
func NewQueueManager(e *Engine) *QueueManager {
	return &QueueManager{engine: e}
}

// QueuedResult is the outcome of one queued scoring request.
type QueuedResult struct {
	// Result is the functional outcome with the request's own timeline.
	Result *backend.Result
	// Arrival, Start and Finish are simulated queue times.
	Arrival, Start, Finish time.Duration
}

// QueueDelay is how long the request waited for the device.
func (q QueuedResult) QueueDelay() time.Duration { return q.Start - q.Arrival }

// ResponseTime is the caller-observed latency including queueing.
func (q QueuedResult) ResponseTime() time.Duration { return q.Finish - q.Arrival }

// Submit scores one request after the given simulated inter-arrival gap
// since the previous submission. It is safe to call from many goroutines;
// requests are admitted in lock acquisition order (the PCIe queue).
func (m *QueueManager) Submit(req *backend.Request, gap time.Duration) (*QueuedResult, error) {
	if gap < 0 {
		return nil, fmt.Errorf("fpga: negative inter-arrival gap %v", gap)
	}
	// Functional scoring happens outside the lock: the PE-array walk is
	// pure; only the simulated-clock bookkeeping needs serializing.
	res, err := m.engine.Score(req)
	if err != nil {
		return nil, err
	}
	service := res.Timeline.Total()
	// The host-side software overhead of the next call overlaps with the
	// device executing the previous one (the HEAX-style queue hides
	// submission latency); only the device-occupancy portion serializes.
	hostOverlap := res.Timeline.Component("software overhead")
	deviceService := service - hostOverlap
	if deviceService < 0 {
		deviceService = 0
	}

	m.mu.Lock()
	m.now += gap
	arrival := m.now
	start := arrival
	if m.deviceFree > start {
		start = m.deviceFree
	}
	finish := start + deviceService
	m.deviceFree = finish
	m.submitted++
	m.busy += deviceService
	m.mu.Unlock()

	// A request that found the device idle still pays its own host-side
	// overhead; a queued request hides it behind the wait.
	if start == arrival {
		finish += hostOverlap
		m.mu.Lock()
		if finish > m.deviceFree {
			m.deviceFree = finish
		}
		m.mu.Unlock()
	}
	return &QueuedResult{Result: res, Arrival: arrival, Start: start, Finish: finish}, nil
}

// Stats reports the queue's aggregate simulated behavior.
func (m *QueueManager) Stats() (submitted int, busy, horizon time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.submitted, m.busy, m.deviceFree
}

// Utilization is device busy time over the simulated horizon.
func (m *QueueManager) Utilization() float64 {
	_, busy, horizon := m.Stats()
	if horizon <= 0 {
		return 0
	}
	u := float64(busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// SubmitBatchConcurrent drives the queue from workers goroutines, each
// submitting one request per element of gaps (round-robin), and returns all
// results. It demonstrates the "spawn as many threads as required" usage and
// is exercised by the concurrency tests.
func (m *QueueManager) SubmitBatchConcurrent(req *backend.Request, gaps []time.Duration, workers int) ([]*QueuedResult, error) {
	if workers < 1 {
		workers = 1
	}
	results := make([]*QueuedResult, len(gaps))
	errs := make([]error, len(gaps))
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := range gaps {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := m.Submit(req, gaps[i])
				results[i] = r
				errs[i] = err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AggregateTimeline folds the queued results into a single timeline with
// queueing accounted as overhead — useful for comparing the queued engine
// against one-shot scoring in breakdown form.
func AggregateTimeline(results []*QueuedResult) *sim.Timeline {
	var tl sim.Timeline
	for _, r := range results {
		if r == nil {
			continue
		}
		tl.Add("queue wait", sim.KindOverhead, r.QueueDelay())
		tl.Add("service", sim.KindCompute, r.Finish-r.Start)
	}
	return &tl
}
