package fpga

import (
	"fmt"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/kernel"
	"accelscore/internal/sim"
)

// Cluster is a record-parallel group of identical FPGA inference engines —
// the scale-out direction of the paper's ref [14] ("Distributed inference
// over decision tree ensembles on clusters of FPGAs"). Records are split
// evenly; every device holds the full model, so the model transfer is paid
// on each device while scoring time divides by the cluster size. The
// timeline reports the makespan device (all devices run concurrently) plus a
// host-side merge.
type Cluster struct {
	engine  *Engine
	devices int
}

// NewCluster wraps n copies of the given engine configuration.
func NewCluster(e *Engine, devices int) (*Cluster, error) {
	if devices < 1 {
		return nil, fmt.Errorf("fpga: cluster needs at least one device, got %d", devices)
	}
	return &Cluster{engine: e, devices: devices}, nil
}

// Name implements backend.Backend.
func (c *Cluster) Name() string {
	if c.devices == 1 {
		return "FPGA"
	}
	return fmt.Sprintf("FPGAx%d", c.devices)
}

// Devices returns the cluster size.
func (c *Cluster) Devices() int { return c.devices }

// Score implements backend.Backend: shards the records across devices,
// scores each shard on the engine's functional simulator, and reassembles
// predictions in order.
func (c *Cluster) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	n := req.Data.NumRecords()
	scored := req.NumScored()
	preds := make([]int, scored)
	shard := (n + c.devices - 1) / c.devices
	if req.Sel != nil {
		// Align shard cuts to the selection's word/block size so each
		// device's sub-bitmap is sliced with pure word arithmetic.
		shard = (shard + kernel.SelectionAlign - 1) / kernel.SelectionAlign * kernel.SelectionAlign
	}
	for d := 0; d < c.devices; d++ {
		lo := d * shard
		hi := lo + shard
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		sub := shardDataset(req.Data, lo, hi)
		subReq := &backend.Request{Forest: req.Forest, Data: sub}
		outLo, outHi := lo, hi
		if req.Sel != nil {
			subReq.Sel = req.Sel.Slice(lo, hi)
			outLo = req.Sel.Rank(lo)
			outHi = outLo + subReq.Sel.Count()
		}
		res, err := c.engine.Score(subReq)
		if err != nil {
			return nil, fmt.Errorf("fpga: cluster device %d: %w", d, err)
		}
		copy(preds[outLo:outHi], res.Predictions)
	}
	tl, err := c.Estimate(req.ModelStats(), int64(scored))
	if err != nil {
		return nil, err
	}
	out := &backend.Result{Predictions: preds}
	out.Timeline.Extend(tl)
	return out, nil
}

// Estimate implements backend.Backend: the makespan of the largest shard
// plus a per-device host merge cost.
func (c *Cluster) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	largest := (records + int64(c.devices) - 1) / int64(c.devices)
	tl, err := c.engine.Estimate(stats, largest)
	if err != nil {
		return nil, err
	}
	var out sim.Timeline
	out.Extend(tl)
	if c.devices > 1 {
		// Host-side gather of the other devices' result buffers: one DMA
		// completion handling per additional device.
		gather := time.Duration(c.devices-1) * c.engine.spec.Link.PerTransfer
		out.Add("cluster result merge", sim.KindOverhead, gather)
	}
	return &out, nil
}

// shardDataset returns a view-copy of rows [lo, hi).
func shardDataset(d *dataset.Dataset, lo, hi int) *dataset.Dataset {
	f := d.NumFeatures()
	out := &dataset.Dataset{
		Name:         d.Name,
		FeatureNames: d.FeatureNames,
		ClassNames:   d.ClassNames,
		X:            d.X[lo*f : hi*f],
	}
	if len(d.Y) >= hi {
		out.Y = d.Y[lo:hi]
	}
	return out
}
