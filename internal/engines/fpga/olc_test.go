package fpga_test

import (
	"testing"

	"accelscore/internal/engines/fpga"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

// TestTimelineSpansCarryOLCKinds pins the Fig. 6 contract the observability
// layer depends on: every span the FPGA engine emits is tagged overhead,
// transfer or compute, and the three kinds account for the whole timeline
// (the overlapped streaming span is retained at zero incremental cost, so
// the identity still holds).
func TestTimelineSpansCarryOLCKinds(t *testing.T) {
	e := fpga.New(hw.DefaultFPGA())
	for _, records := range []int64{1, 10_000} {
		stats := forest.SyntheticStats(32, 8, 28, 2)
		tl, err := e.Estimate(stats, records)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range tl.Spans() {
			switch s.Kind {
			case sim.KindOverhead, sim.KindTransfer, sim.KindCompute:
			default:
				t.Errorf("records=%d: span %q has non-O/L/C kind %v", records, s.Name, s.Kind)
			}
		}
		sum := tl.TotalKind(sim.KindOverhead) + tl.TotalKind(sim.KindTransfer) + tl.TotalKind(sim.KindCompute)
		if sum != tl.Total() {
			t.Errorf("records=%d: O+L+C = %v, total = %v", records, sum, tl.Total())
		}
	}
}
