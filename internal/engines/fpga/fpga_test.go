package fpga

import (
	"strings"
	"testing"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

func train(t testing.TB, d *dataset.Dataset, trees, depth int, seed uint64) *forest.Forest {
	t.Helper()
	f, err := forest.Train(d, forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      seed,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestScoreMatchesForestIris(t *testing.T) {
	f := train(t, dataset.Iris(), 8, 10, 1)
	data := dataset.Iris().Replicate(400)
	e := New(hw.DefaultFPGA())
	res, err := e.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("prediction %d: %d != %d", i, res.Predictions[i], want[i])
		}
	}
}

func TestScoreMatchesForestHiggs(t *testing.T) {
	d := dataset.Higgs(500, 2)
	f := train(t, d, 6, 10, 3)
	e := New(hw.DefaultFPGA())
	res, err := e.Score(&backend.Request{Forest: f, Data: d})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(d)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("HIGGS prediction %d differs", i)
		}
	}
}

func TestMultiPassBeyond128Trees(t *testing.T) {
	// More trees than PEs: "we need to call the inference engine multiple
	// times" (§III-B). Use a small PE count to keep the test fast.
	spec := hw.DefaultFPGA()
	spec.ProcessingElements = 4
	f := train(t, dataset.Iris(), 10, 6, 4) // 10 trees -> 3 passes
	data := dataset.Iris().Head(60)
	e := New(spec)
	res, err := e.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("multi-pass prediction %d differs", i)
		}
	}
	// Timing: 3 passes charge 3x the per-call overheads.
	tl, err := e.Estimate(f.ComputeStats(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Component("software overhead"); got != 3*spec.SoftwareOverhead {
		t.Fatalf("software overhead = %v, want 3 passes worth", got)
	}
}

func TestFig7ComponentsPresent(t *testing.T) {
	e := New(hw.DefaultFPGA())
	tl, err := e.Estimate(forest.SyntheticStats(128, 10, 4, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"input transfer", "FPGA setup", "scoring",
		"completion signal", "result transfer", "software overhead",
	} {
		if tl.Component(name) < 0 {
			t.Fatalf("component %q missing", name)
		}
		found := false
		for _, n := range tl.ComponentNames() {
			if strings.HasPrefix(n, name) {
				found = true
			}
		}
		if !found {
			t.Fatalf("component %q not in timeline: %v", name, tl.ComponentNames())
		}
	}
}

func TestOneRecordMillisecondFloor(t *testing.T) {
	// Fig. 7a: scoring one record is ns-scale but the overall time is
	// milliseconds, dominated by input transfer + software overhead.
	e := New(hw.DefaultFPGA())
	tl, err := e.Estimate(forest.SyntheticStats(128, 10, 28, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	total := tl.Total()
	if total < time.Millisecond || total > 5*time.Millisecond {
		t.Fatalf("1-record overall time = %v, want low milliseconds", total)
	}
	if sc := tl.Component("scoring"); sc > time.Microsecond {
		t.Fatalf("1-record scoring = %v, want ns scale", sc)
	}
	dominant := tl.Component("input transfer") + tl.Component("software overhead")
	if float64(dominant)/float64(total) < 0.5 {
		t.Fatalf("input transfer + software overhead = %v of %v, should dominate", dominant, total)
	}
}

func TestMillionRecordScoringDominates(t *testing.T) {
	// Fig. 7b: at 1M records scoring (tens of ms) dominates the offload
	// components.
	e := New(hw.DefaultFPGA())
	tl, err := e.Estimate(forest.SyntheticStats(128, 10, 4, 3), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sc := tl.Component("scoring")
	if sc < 30*time.Millisecond || sc > 50*time.Millisecond {
		t.Fatalf("1M-record scoring = %v, want ~40ms", sc)
	}
	if float64(sc)/float64(tl.Total()) < 0.9 {
		t.Fatalf("scoring %v should dominate total %v", sc, tl.Total())
	}
}

func TestOverheadsIndependentOfModel(t *testing.T) {
	// "FPGA setup, completion signal, and software overhead remain the same
	// as they are independent of the model complexity" (§IV-B).
	e := New(hw.DefaultFPGA())
	small, _ := e.Estimate(forest.SyntheticStats(1, 10, 4, 3), 1000)
	large, _ := e.Estimate(forest.SyntheticStats(128, 10, 28, 2), 1000)
	for _, name := range []string{"FPGA setup", "completion signal", "software overhead"} {
		if small.Component(name) != large.Component(name) {
			t.Fatalf("%q varies with model complexity", name)
		}
	}
	// Input transfer grows with model size.
	if small.Component("input transfer") >= large.Component("input transfer") {
		t.Fatal("input transfer should grow with model size")
	}
}

func TestDepthLimitEnforced(t *testing.T) {
	// Trees deeper than 10 levels "need to be processed by the CPU"
	// (§III-B): without the hybrid fallback the engine refuses.
	d := dataset.Higgs(2000, 9)
	f := train(t, d, 2, 14, 10)
	deep := false
	for _, tr := range f.Trees {
		if tr.Depth() > 10 {
			deep = true
		}
	}
	if !deep {
		t.Skip("training did not produce a deep enough tree")
	}
	e := New(hw.DefaultFPGA())
	if _, err := e.Score(&backend.Request{Forest: f, Data: d.Head(50)}); err == nil {
		t.Fatal("deep tree accepted without hybrid fallback")
	}

	// With the fallback the predictions are exact and the timeline charges
	// the CPU completion stage.
	hybrid := e.WithDeepTreeFallback(hw.DefaultCPU(), 52)
	res, err := hybrid.Score(&backend.Request{Forest: f, Data: d.Head(50)})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(d.Head(50))
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("hybrid prediction %d differs", i)
		}
	}
	if res.Timeline.Component("CPU deep-level completion") <= 0 {
		t.Fatal("hybrid mode did not charge CPU completion")
	}
}

func TestRejectsRegressor(t *testing.T) {
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2, Kind: forest.Regressor, Tree: forest.TrainConfig{MaxDepth: 4}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(hw.DefaultFPGA())
	if _, err := e.Score(&backend.Request{Forest: f, Data: dataset.Iris()}); err == nil {
		t.Fatal("regressor accepted by majority-vote engine")
	}
}

func TestOverlapAblation(t *testing.T) {
	stats := forest.SyntheticStats(1, 10, 28, 2)
	e := New(hw.DefaultFPGA())
	with, _ := e.Estimate(stats, 1_000_000)
	without, _ := e.WithoutOverlap().Estimate(stats, 1_000_000)
	if without.Total() <= with.Total() {
		t.Fatalf("disabling stream overlap should cost time: %v vs %v", without.Total(), with.Total())
	}
}

func TestBRAMSpillAblation(t *testing.T) {
	stats := forest.SyntheticStats(128, 10, 4, 3)
	fit := New(hw.DefaultFPGA())
	// Shrink BRAM below the 2 MB model footprint to force spilling.
	spill := fit.WithBRAMBytes(1 << 20)
	fitTl, _ := fit.Estimate(stats, 1_000_000)
	spillTl, _ := spill.Estimate(stats, 1_000_000)
	ratio := float64(spillTl.Component("scoring")) / float64(fitTl.Component("scoring"))
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("spill penalty ratio = %v, want ~4x", ratio)
	}
}

func TestEstimateMatchesScoreTimeline(t *testing.T) {
	f := train(t, dataset.Iris(), 8, 10, 12)
	data := dataset.Iris().Replicate(250)
	e := New(hw.DefaultFPGA())
	res, err := e.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(f.ComputeStats(), 250)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.Total() != est.Total() {
		t.Fatalf("Score %v != Estimate %v", res.Timeline.Total(), est.Total())
	}
}

func TestInterruptCostExceedsCSR(t *testing.T) {
	e := New(hw.DefaultFPGA())
	tl, _ := e.Estimate(forest.SyntheticStats(1, 10, 4, 3), 1)
	if tl.Component("FPGA setup") >= tl.Component("completion signal") {
		t.Fatal("CSR setup should cost less than interrupt completion (§IV-B)")
	}
}

func TestTransferKindsTagged(t *testing.T) {
	e := New(hw.DefaultFPGA())
	tl, _ := e.Estimate(forest.SyntheticStats(8, 10, 4, 3), 1000)
	if tl.TotalKind(sim.KindTransfer) <= 0 {
		t.Fatal("no transfer spans tagged")
	}
	if tl.TotalKind(sim.KindOverhead) <= 0 {
		t.Fatal("no overhead spans tagged")
	}
	if tl.TotalKind(sim.KindCompute) <= 0 {
		t.Fatal("no compute spans tagged")
	}
}

func BenchmarkScoreIris10K(b *testing.B) {
	f := train(b, dataset.Iris(), 16, 10, 1)
	data := dataset.Iris().Replicate(10_000)
	e := New(hw.DefaultFPGA())
	req := &backend.Request{Forest: f, Data: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Score(req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResultMemoryDrains(t *testing.T) {
	// 1M records x 4B = 4MB of results against a 1MB result memory: four
	// drain DMAs, each paying the fixed cost.
	e := New(hw.DefaultFPGA())
	stats := forest.SyntheticStats(1, 10, 4, 3)
	small, err := e.Estimate(stats, 1000)
	if err != nil {
		t.Fatal(err)
	}
	large, err := e.Estimate(stats, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	spec := hw.DefaultFPGA()
	smallFixed := small.Component("result transfer") - spec.Link.StreamTime(1000*4)
	largeFixed := large.Component("result transfer") - spec.Link.StreamTime(1_000_000*4)
	if smallFixed != spec.ResultTransferFixed {
		t.Fatalf("small batch result fixed cost = %v, want %v", smallFixed, spec.ResultTransferFixed)
	}
	if largeFixed != 4*spec.ResultTransferFixed {
		t.Fatalf("large batch result fixed cost = %v, want 4 drains (%v)", largeFixed, 4*spec.ResultTransferFixed)
	}
}

func TestClusterMatchesSingleDevicePredictions(t *testing.T) {
	f := train(t, dataset.Iris(), 8, 10, 51)
	data := dataset.Iris().Replicate(357) // not divisible by cluster size
	single := New(hw.DefaultFPGA())
	cl, err := NewCluster(single, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("cluster prediction %d differs", i)
		}
	}
	if cl.Name() != "FPGAx4" || cl.Devices() != 4 {
		t.Fatalf("cluster identity wrong: %s/%d", cl.Name(), cl.Devices())
	}
}

func TestClusterScalesScoring(t *testing.T) {
	stats := forest.SyntheticStats(128, 10, 28, 2)
	single := New(hw.DefaultFPGA())
	cl4, _ := NewCluster(single, 4)
	one, err := single.Estimate(stats, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	four, err := cl4.Estimate(stats, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(one.Total()) / float64(four.Total())
	// Scoring divides by 4 but per-device overheads (model transfer,
	// software) do not: sublinear but substantial.
	if speedup < 2.5 || speedup > 4 {
		t.Fatalf("4-device speedup = %.2f, want in (2.5, 4)", speedup)
	}
	if four.Component("cluster result merge") <= 0 {
		t.Fatal("merge cost missing")
	}
	// At tiny batches the cluster is no better (overhead-bound).
	oneSmall, _ := single.Estimate(stats, 10)
	fourSmall, _ := cl4.Estimate(stats, 10)
	if fourSmall.Total() < oneSmall.Total() {
		t.Fatalf("cluster should not beat one device at 10 records: %v vs %v",
			fourSmall.Total(), oneSmall.Total())
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(New(hw.DefaultFPGA()), 0); err == nil {
		t.Fatal("zero-device cluster accepted")
	}
	cl, _ := NewCluster(New(hw.DefaultFPGA()), 1)
	if cl.Name() != "FPGA" {
		t.Fatalf("single-device cluster name = %s", cl.Name())
	}
}
