package fpga

import (
	"testing"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/hw"
)

func queueFixture(t testing.TB) (*QueueManager, *backend.Request) {
	t.Helper()
	f := train(t, dataset.Iris(), 8, 10, 31)
	data := dataset.Iris().Replicate(200)
	return NewQueueManager(New(hw.DefaultFPGA())), &backend.Request{Forest: f, Data: data}
}

func TestQueueSingleSubmit(t *testing.T) {
	qm, req := queueFixture(t)
	r, err := qm.Submit(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.QueueDelay() != 0 {
		t.Fatalf("idle device gave queue delay %v", r.QueueDelay())
	}
	if len(r.Result.Predictions) != 200 {
		t.Fatalf("%d predictions", len(r.Result.Predictions))
	}
	// Idle submission pays full service including host overhead.
	if r.ResponseTime() < r.Result.Timeline.Total()-time.Microsecond {
		t.Fatalf("response %v below service %v", r.ResponseTime(), r.Result.Timeline.Total())
	}
}

func TestQueueBackToBackRequestsQueue(t *testing.T) {
	qm, req := queueFixture(t)
	a, err := qm.Submit(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := qm.Submit(req, 0) // arrives while the device is busy
	if err != nil {
		t.Fatal(err)
	}
	if b.QueueDelay() <= 0 {
		t.Fatalf("second request saw no queueing: %+v", b)
	}
	if b.Start < a.Finish-a.Result.Timeline.Component("software overhead")-time.Microsecond {
		t.Fatalf("overlap accounting wrong: b.Start=%v a.Finish=%v", b.Start, a.Finish)
	}
}

func TestQueueNegativeGapRejected(t *testing.T) {
	qm, req := queueFixture(t)
	if _, err := qm.Submit(req, -time.Second); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestQueueUtilizationUnderLoad(t *testing.T) {
	qm, req := queueFixture(t)
	// Zero inter-arrival gaps: the device should be nearly always busy.
	gaps := make([]time.Duration, 20)
	results, err := qm.SubmitBatchConcurrent(req, gaps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("%d results", len(results))
	}
	if u := qm.Utilization(); u < 0.9 {
		t.Fatalf("utilization under saturation = %v, want ~1", u)
	}
	// Every request computed correct predictions.
	want := req.Forest.PredictBatch(req.Data)
	for ri, r := range results {
		for i := range want {
			if r.Result.Predictions[i] != want[i] {
				t.Fatalf("request %d prediction %d differs", ri, i)
			}
		}
	}
	submitted, busy, horizon := qm.Stats()
	if submitted != 20 || busy <= 0 || horizon < busy {
		t.Fatalf("stats = %d %v %v", submitted, busy, horizon)
	}
}

func TestQueueIdleArrivalsDontQueue(t *testing.T) {
	qm, req := queueFixture(t)
	// Gaps far larger than the service time: no request should wait.
	one, err := qm.Submit(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	service := one.ResponseTime()
	for i := 0; i < 5; i++ {
		r, err := qm.Submit(req, 10*service)
		if err != nil {
			t.Fatal(err)
		}
		if r.QueueDelay() > 0 {
			t.Fatalf("request %d queued %v despite idle device", i, r.QueueDelay())
		}
	}
	if u := qm.Utilization(); u > 0.2 {
		t.Fatalf("idle workload utilization = %v, want low", u)
	}
}

func TestQueueThroughputExceedsSerialCalls(t *testing.T) {
	// The queue hides per-call host software overhead behind device
	// execution, so the sustained horizon for N back-to-back requests is
	// shorter than N sequential one-shot calls.
	qm, req := queueFixture(t)
	const n = 10
	gaps := make([]time.Duration, n)
	if _, err := qm.SubmitBatchConcurrent(req, gaps, 2); err != nil {
		t.Fatal(err)
	}
	_, _, horizon := qm.Stats()

	oneShot, err := New(hw.DefaultFPGA()).Score(req)
	if err != nil {
		t.Fatal(err)
	}
	serial := time.Duration(n) * oneShot.Timeline.Total()
	if horizon >= serial {
		t.Fatalf("queued horizon %v not better than serial %v", horizon, serial)
	}
}

func TestAggregateTimeline(t *testing.T) {
	qm, req := queueFixture(t)
	gaps := make([]time.Duration, 4)
	results, err := qm.SubmitBatchConcurrent(req, gaps, 2)
	if err != nil {
		t.Fatal(err)
	}
	tl := AggregateTimeline(results)
	if tl.Component("service") <= 0 {
		t.Fatal("no service time aggregated")
	}
	if tl.Component("queue wait") <= 0 {
		t.Fatal("saturated queue shows no waiting")
	}
	// Nil entries are tolerated.
	if AggregateTimeline([]*QueuedResult{nil}).Total() != 0 {
		t.Fatal("nil handling broken")
	}
}

func BenchmarkQueueSubmit(b *testing.B) {
	qm, req := queueFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qm.Submit(req, 0); err != nil {
			b.Fatal(err)
		}
	}
}
