package cpuonnx

import (
	"accelscore/internal/forest"
	"accelscore/internal/kernel"
)

// compileFlat is the engine's "session initialization": lowering the
// deserialized model into the flat TreeEnsemble node arrays the ONNX Runtime
// kernels iterate over. The layout and traversal core now live in the shared
// internal/kernel package (they were promoted out of this engine); this
// wrapper is what the ONNXInvoke timing constant charges for.
func compileFlat(f *forest.Forest) (*kernel.Compiled, error) {
	return f.Compile()
}
