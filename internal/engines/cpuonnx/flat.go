package cpuonnx

import (
	"fmt"

	"accelscore/internal/forest"
)

// flatEnsemble is the engine's compiled execution form: the ONNX Runtime
// TreeEnsemble kernels flatten every tree into parallel node arrays and
// iterate with integer indices instead of chasing pointers. Compiling the
// deserialized model into this layout is the "session initialization" work
// the ONNXInvoke constant charges for.
type flatEnsemble struct {
	// trees[i] indexes into the shared arrays: tree i occupies nodes
	// [treeStart[i], treeStart[i+1]).
	treeStart []int32
	// Parallel node arrays. leftChild < 0 marks a leaf; the class id is
	// encoded as -(leftChild+1) and value holds the leaf payload.
	featureIdx []int32
	threshold  []float32
	leftChild  []int32
	rightChild []int32
	value      []float64
	class      []int32

	kind    forest.Kind
	classes int
	base    float64
}

// compileFlat lowers a forest into the flat layout.
func compileFlat(f *forest.Forest) (*flatEnsemble, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	fe := &flatEnsemble{kind: f.Kind, classes: f.NumClasses, base: f.BaseScore}
	for _, t := range f.Trees {
		fe.treeStart = append(fe.treeStart, int32(len(fe.featureIdx)))
		if err := fe.flatten(t.Root); err != nil {
			return nil, err
		}
	}
	fe.treeStart = append(fe.treeStart, int32(len(fe.featureIdx)))
	return fe, nil
}

// flatten appends node n (and recursively its subtree) to the arrays,
// returning nothing; children are fixed up after their subtrees are
// emitted.
func (fe *flatEnsemble) flatten(n *forest.Node) error {
	idx := len(fe.featureIdx)
	fe.featureIdx = append(fe.featureIdx, 0)
	fe.threshold = append(fe.threshold, 0)
	fe.leftChild = append(fe.leftChild, 0)
	fe.rightChild = append(fe.rightChild, 0)
	fe.value = append(fe.value, n.Value)
	fe.class = append(fe.class, int32(n.Class))
	if n.IsLeaf() {
		fe.leftChild[idx] = -int32(n.Class) - 1
		fe.rightChild[idx] = -1
		return nil
	}
	fe.featureIdx[idx] = int32(n.Feature)
	fe.threshold[idx] = n.Threshold
	left := len(fe.featureIdx)
	if err := fe.flatten(n.Left); err != nil {
		return err
	}
	right := len(fe.featureIdx)
	if err := fe.flatten(n.Right); err != nil {
		return err
	}
	if left > 1<<30 || right > 1<<30 {
		return fmt.Errorf("cpuonnx: ensemble too large to flatten")
	}
	fe.leftChild[idx] = int32(left)
	fe.rightChild[idx] = int32(right)
	return nil
}

// predict evaluates one row: iterative index-chasing per tree, vote or
// margin aggregation at the end — the TreeEnsembleClassifier kernel shape.
func (fe *flatEnsemble) predict(row []float32, votes []int) int {
	if fe.kind == forest.Boosted {
		margin := fe.base
		for t := 0; t < len(fe.treeStart)-1; t++ {
			margin += fe.value[fe.walk(fe.treeStart[t], row)]
		}
		if margin > 0 {
			return 1
		}
		return 0
	}
	for i := range votes {
		votes[i] = 0
	}
	for t := 0; t < len(fe.treeStart)-1; t++ {
		leaf := fe.walk(fe.treeStart[t], row)
		votes[fe.class[leaf]]++
	}
	return forest.Argmax(votes)
}

// walk descends one flattened tree and returns the leaf's node index.
func (fe *flatEnsemble) walk(root int32, row []float32) int32 {
	idx := root
	for {
		left := fe.leftChild[idx]
		if left < 0 && fe.rightChild[idx] == -1 {
			return idx
		}
		if row[fe.featureIdx[idx]] < fe.threshold[idx] {
			idx = left
		} else {
			idx = fe.rightChild[idx]
		}
	}
}
