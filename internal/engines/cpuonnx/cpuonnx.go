// Package cpuonnx implements the ONNX-Runtime-style CPU scoring engine
// ("CPU_ONNX" and "CPU_ONNX_52th" in the paper's figures): it consumes the
// serialized RFX model blob — deserializing it exactly as the Python
// pipeline's model pre-processing step does — and interprets it per record.
//
// ONNX Runtime's TreeEnsembleClassifier "is not currently optimized for
// batch scoring" (paper §IV-C2 quoting [30]): its session invocation is
// cheap, which makes it the best CPU choice below ~5K records, but its
// per-visit cost is higher than Scikit-learn's, so it loses at batch scale.
package cpuonnx

import (
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/faults"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/model"
	"accelscore/internal/sim"
)

// Engine scores serialized RFX models.
type Engine struct {
	spec    hw.CPUSpec
	threads int
	name    string
}

// New returns an ONNX-style engine with the given intra-op thread count.
// The paper evaluates 1 thread (CPU_ONNX) and 52 threads (CPU_ONNX_52th).
func New(spec hw.CPUSpec, threads int) *Engine {
	if threads <= 0 {
		threads = 1
	}
	name := "CPU_ONNX"
	if threads > 1 {
		name = fmt.Sprintf("CPU_ONNX_%dth", threads)
	}
	return &Engine{spec: spec, threads: threads, name: name}
}

// Name implements backend.Backend.
func (e *Engine) Name() string { return e.name }

// Threads returns the configured intra-op thread count.
func (e *Engine) Threads() int { return e.threads }

// ScoreBlob scores a serialized model blob over the request's data. This is
// the engine's native entry point: it exercises the same
// deserialize-then-interpret path the Python pipeline uses.
func (e *Engine) ScoreBlob(blob []byte, req *backend.Request) (*backend.Result, error) {
	f, err := model.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("cpuonnx: %w", err)
	}
	r := *req
	r.Forest = f
	return e.Score(&r)
}

// Score implements backend.Backend.
func (e *Engine) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// O boundary: session invocation.
	if err := req.Boundary(e.name, faults.BoundaryInvoke); err != nil {
		return nil, err
	}
	n := req.Data.NumRecords()

	// Session initialization: flatten the ensemble into the parallel node
	// arrays the ONNX TreeEnsemble kernels iterate over (the work the
	// ONNXInvoke timing constant charges for). A pre-compiled form from the
	// pipeline's model cache skips this step.
	fe := req.Compiled
	if fe == nil {
		var err error
		if fe, err = compileFlat(req.Forest); err != nil {
			return nil, fmt.Errorf("cpuonnx: %w", err)
		}
	}
	// C boundary: per-record interpretation.
	if err := req.Boundary(e.name, faults.BoundaryCompute); err != nil {
		return nil, err
	}

	features := req.Data.NumFeatures()
	res := &backend.Result{}
	switch {
	case req.WantCounts:
		// Fused score-then-aggregate through the shared kernel histogram.
		classes := req.Forest.NumClasses
		if classes < 2 {
			classes = 2
		}
		counts := make([]int64, classes)
		fe.PredictAggregate(req.Data.X[:n*features], features, n, req.Sel, counts, e.threads)
		res.ClassCounts = counts
	case req.Sel != nil:
		preds := make([]int, req.Sel.Count())
		fe.PredictSel(req.Data.X[:n*features], features, req.Sel, preds, e.threads)
		res.Predictions = preds
	default:
		preds := make([]int, n)
		fe.Predict(req.Data.X[:n*features], features, preds, e.threads)
		res.Predictions = preds
	}

	tl, err := e.Estimate(req.ModelStats(), int64(req.NumScored()))
	if err != nil {
		return nil, err
	}
	res.Timeline.Extend(tl)
	return res, nil
}

// Estimate implements backend.Backend.
func (e *Engine) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	if records < 0 {
		return nil, fmt.Errorf("cpuonnx: negative record count %d", records)
	}
	visits := stats.Visits(records)
	total := e.spec.ONNXScoringTime(visits, stats.Features, e.threads)
	fixed := e.spec.ONNXInvoke
	if e.threads > 1 {
		fixed += e.spec.ONNXPoolSetup
	}
	var tl sim.Timeline
	tl.Add("session invoke", sim.KindOverhead, fixed)
	tl.Add("scoring", sim.KindCompute, total-fixed)
	return &tl, nil
}
