package cpuonnx

import (
	"testing"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/model"
)

func trainIris(t testing.TB, trees, depth int) *forest.Forest {
	t.Helper()
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      2,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNames(t *testing.T) {
	spec := hw.DefaultCPU()
	if got := New(spec, 1).Name(); got != "CPU_ONNX" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(spec, 52).Name(); got != "CPU_ONNX_52th" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(spec, 0).Threads(); got != 1 {
		t.Fatalf("default threads = %d", got)
	}
}

func TestScoreMatchesForest(t *testing.T) {
	f := trainIris(t, 8, 10)
	data := dataset.Iris().Replicate(300)
	for _, threads := range []int{1, 52} {
		e := New(hw.DefaultCPU(), threads)
		res, err := e.Score(&backend.Request{Forest: f, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		want := f.PredictBatch(data)
		for i := range want {
			if res.Predictions[i] != want[i] {
				t.Fatalf("threads=%d prediction %d: %d != %d", threads, i, res.Predictions[i], want[i])
			}
		}
	}
}

func TestScoreBlobPath(t *testing.T) {
	f := trainIris(t, 4, 8)
	blob, err := model.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.Iris().Head(50)
	e := New(hw.DefaultCPU(), 1)
	res, err := e.ScoreBlob(blob, &backend.Request{Data: data})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("blob prediction %d differs", i)
		}
	}
	// Corrupt blobs are rejected.
	blob[10] ^= 0xFF
	if _, err := e.ScoreBlob(blob, &backend.Request{Data: data}); err == nil {
		t.Fatal("corrupt blob accepted")
	}
}

func TestSingleRecordLatencyIsTiny(t *testing.T) {
	// ONNX on one thread is the latency-optimal CPU path at 1 record —
	// the baseline for the paper's ">=10x wrong-offload penalty".
	e := New(hw.DefaultCPU(), 1)
	tl, err := e.Estimate(forest.SyntheticStats(1, 10, 4, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Total(); got > 300*time.Microsecond {
		t.Fatalf("1-record ONNX latency = %v, want well under a millisecond", got)
	}
}

func TestAnchor54xBaseline(t *testing.T) {
	// CPU_ONNX_52th at 1M x 128 trees x 10 levels on IRIS: ~2.4s (the
	// paper's 54x FPGA denominator).
	e := New(hw.DefaultCPU(), 52)
	tl, err := e.Estimate(forest.SyntheticStats(128, 10, 4, 3), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Total(); got < 2*time.Second || got > 3*time.Second {
		t.Fatalf("ONNX52 IRIS 1Mx128t = %v, want ~2.4s", got)
	}
}

func TestONNXvsSKLearnCrossover(t *testing.T) {
	// Below a few thousand records single-thread ONNX must beat the
	// 52-thread Scikit-learn engine (paper §IV-C2); at 1M records it must
	// lose. The Scikit-learn batch-setup constant is 4ms, so compare
	// against it directly.
	spec := hw.DefaultCPU()
	onnx := New(spec, 1)
	stats := forest.SyntheticStats(1, 10, 4, 3)

	small, _ := onnx.Estimate(stats, 1000)
	if small.Total() >= spec.SKLearnBatchSetup {
		t.Fatalf("ONNX at 1K records (%v) should beat sklearn's %v setup floor",
			small.Total(), spec.SKLearnBatchSetup)
	}
	big, _ := onnx.Estimate(stats, 1_000_000)
	sklearnBig := spec.SKLearnScoringTime(stats.Visits(1_000_000), 4, 52)
	if big.Total() <= sklearnBig {
		t.Fatalf("ONNX-1th at 1M records (%v) should lose to sklearn-52th (%v)",
			big.Total(), sklearnBig)
	}
}

func BenchmarkScore10K(b *testing.B) {
	f := trainIris(b, 16, 10)
	data := dataset.Iris().Replicate(10_000)
	e := New(hw.DefaultCPU(), 52)
	req := &backend.Request{Forest: f, Data: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Score(req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFlatEnsembleMatchesPointerWalk(t *testing.T) {
	f := trainIris(t, 10, 10)
	fe, err := compileFlat(f)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Iris()
	votes := make([]int, f.NumClasses)
	for i := 0; i < d.NumRecords(); i++ {
		row := d.Row(i)
		if got, want := fe.PredictRow(row, votes), f.PredictClass(row); got != want {
			t.Fatalf("flat kernel %d != pointer walk %d on row %d", got, want, i)
		}
	}
	// The node arrays account for every node exactly once.
	total := 0
	for _, tr := range f.Trees {
		total += tr.NodeCount()
	}
	if fe.NumNodes() != total {
		t.Fatalf("flattened %d nodes, forest has %d", fe.NumNodes(), total)
	}
	if fe.NumTrees() != len(f.Trees) {
		t.Fatal("tree extents broken")
	}
}

func TestFlatEnsembleBoosted(t *testing.T) {
	d := dataset.Higgs(1200, 71)
	f, err := forest.TrainBoosted(d, forest.BoostConfig{NumTrees: 8, MaxDepth: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := compileFlat(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumRecords(); i += 13 {
		row := d.Row(i)
		if got, want := fe.PredictRow(row, nil), f.PredictClass(row); got != want {
			t.Fatalf("boosted flat kernel differs on row %d", i)
		}
	}
}

// TestPrecompiledRequest verifies the cache-hit fast path: a request
// carrying the pre-lowered kernel form must produce identical predictions.
func TestPrecompiledRequest(t *testing.T) {
	f := trainIris(t, 6, 8)
	data := dataset.Iris().Replicate(500)
	compiled, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e := New(hw.DefaultCPU(), 52)
	plain, err := e.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := e.Score(&backend.Request{Forest: f, Data: data, Compiled: compiled})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Predictions {
		if plain.Predictions[i] != pre.Predictions[i] {
			t.Fatalf("precompiled prediction %d differs", i)
		}
	}
}
