package cpusk_test

import (
	"testing"

	"accelscore/internal/engines/cpusk"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

// TestTimelineSpansCarryOLCKinds pins the Fig. 6 contract the observability
// layer depends on: every span an engine emits is tagged overhead, transfer
// or compute — never the pipeline kind — so the live per-kind counters
// account for all simulated scoring time.
func TestTimelineSpansCarryOLCKinds(t *testing.T) {
	e := cpusk.New(hw.DefaultCPU(), 4)
	stats := forest.SyntheticStats(32, 8, 28, 2)
	tl, err := e.Estimate(stats, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tl.Spans() {
		switch s.Kind {
		case sim.KindOverhead, sim.KindTransfer, sim.KindCompute:
		default:
			t.Errorf("span %q has non-O/L/C kind %v", s.Name, s.Kind)
		}
	}
	sum := tl.TotalKind(sim.KindOverhead) + tl.TotalKind(sim.KindTransfer) + tl.TotalKind(sim.KindCompute)
	if sum != tl.Total() {
		t.Errorf("O+L+C = %v, total = %v", sum, tl.Total())
	}
}
