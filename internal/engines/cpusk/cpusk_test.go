package cpusk

import (
	"testing"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

func trainIris(t testing.TB, trees, depth int) *forest.Forest {
	t.Helper()
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNameReflectsThreads(t *testing.T) {
	spec := hw.DefaultCPU()
	if got := New(spec, 52).Name(); got != "CPU_SKLearn" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(spec, 1).Name(); got != "CPU_SKLearn_1th" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(spec, 0).Threads(); got != spec.HardwareThreads {
		t.Fatalf("default threads = %d", got)
	}
}

func TestScoreMatchesForest(t *testing.T) {
	f := trainIris(t, 8, 10)
	data := dataset.Iris().Replicate(500)
	e := New(hw.DefaultCPU(), 52)
	res, err := e.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("prediction %d: %d != %d", i, res.Predictions[i], want[i])
		}
	}
}

func TestScoreTimelineMatchesEstimate(t *testing.T) {
	f := trainIris(t, 4, 6)
	data := dataset.Iris().Replicate(200)
	e := New(hw.DefaultCPU(), 52)
	res, err := e.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(f.ComputeStats(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.Total() != est.Total() {
		t.Fatalf("Score timeline %v != Estimate %v", res.Timeline.Total(), est.Total())
	}
}

func TestTimelineComponents(t *testing.T) {
	e := New(hw.DefaultCPU(), 52)
	tl, err := e.Estimate(forest.SyntheticStats(128, 10, 4, 3), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// CPU backend: no transfer component (Fig. 6 Option 1).
	if tl.TotalKind(sim.KindTransfer) != 0 {
		t.Fatal("CPU backend charged a transfer component")
	}
	if tl.Component("batch setup") != hw.DefaultCPU().SKLearnBatchSetup {
		t.Fatal("batch setup missing")
	}
	if tl.Component("scoring") <= 0 {
		t.Fatal("scoring component missing")
	}
}

func TestAnchorIris1M1Tree(t *testing.T) {
	// ~19 ms for 1M records x 1 tree x 10 levels on IRIS with 52 threads.
	e := New(hw.DefaultCPU(), 52)
	tl, err := e.Estimate(forest.SyntheticStats(1, 10, 4, 3), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Total(); got < 15*time.Millisecond || got > 25*time.Millisecond {
		t.Fatalf("IRIS 1Mx1t = %v, want ~19ms", got)
	}
}

func TestThreadScaling(t *testing.T) {
	stats := forest.SyntheticStats(16, 10, 4, 3)
	one, _ := New(hw.DefaultCPU(), 1).Estimate(stats, 100_000)
	many, _ := New(hw.DefaultCPU(), 52).Estimate(stats, 100_000)
	if many.Total() >= one.Total() {
		t.Fatalf("52 threads (%v) not faster than 1 (%v)", many.Total(), one.Total())
	}
}

func TestRejectsMismatchedSchema(t *testing.T) {
	f := trainIris(t, 2, 4)
	data := dataset.Higgs(10, 1) // 28 features vs model's 4
	e := New(hw.DefaultCPU(), 4)
	if _, err := e.Score(&backend.Request{Forest: f, Data: data}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if _, err := e.Estimate(forest.SyntheticStats(1, 4, 4, 3), -1); err == nil {
		t.Fatal("negative records accepted")
	}
}

func BenchmarkScore10K(b *testing.B) {
	f := trainIris(b, 16, 10)
	data := dataset.Iris().Replicate(10_000)
	e := New(hw.DefaultCPU(), 52)
	req := &backend.Request{Forest: f, Data: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Score(req); err != nil {
			b.Fatal(err)
		}
	}
}
