// Package cpusk implements the Scikit-learn-style CPU scoring engine
// ("CPU_SKLearn" in the paper's figures): blocked batch traversal through
// the shared flat kernel (internal/kernel), parallelized across worker
// goroutines, with a calibrated timing model for the Python-hosted library
// the paper measured.
//
// Fig. 6 Option 1: the CPU backend has no offload or transfer components —
// its timeline is a fixed batch-setup overhead plus compute.
package cpusk

import (
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/faults"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

// Engine is a Scikit-learn-style batch scorer.
type Engine struct {
	spec    hw.CPUSpec
	threads int
	name    string
}

// New returns an engine using threads scoring threads (the paper uses 52).
func New(spec hw.CPUSpec, threads int) *Engine {
	if threads <= 0 {
		threads = spec.HardwareThreads
	}
	name := "CPU_SKLearn"
	if threads == 1 {
		name = "CPU_SKLearn_1th"
	}
	return &Engine{spec: spec, threads: threads, name: name}
}

// Name implements backend.Backend.
func (e *Engine) Name() string { return e.name }

// Threads returns the configured scoring thread count.
func (e *Engine) Threads() int { return e.threads }

// Score implements backend.Backend: goroutine-parallel batch traversal
// through the shared flat kernel plus the calibrated timeline. When the
// request carries a pre-compiled kernel form (pipeline cache hit), the
// per-query lowering is skipped entirely.
func (e *Engine) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// O boundary: library/batch setup.
	if err := req.Boundary(e.name, faults.BoundaryInvoke); err != nil {
		return nil, err
	}
	n := req.Data.NumRecords()

	compiled := req.Compiled
	if compiled == nil {
		var err error
		if compiled, err = req.Forest.Compile(); err != nil {
			return nil, fmt.Errorf("cpusk: %w", err)
		}
	}
	// C boundary: the traversal itself.
	if err := req.Boundary(e.name, faults.BoundaryCompute); err != nil {
		return nil, err
	}
	features := req.Data.NumFeatures()
	res := &backend.Result{}
	switch {
	case req.WantCounts:
		// Fused score-then-aggregate: tally classes inside the block loop,
		// never materializing the per-row prediction vector.
		classes := req.Forest.NumClasses
		if classes < 2 {
			classes = 2
		}
		counts := make([]int64, classes)
		compiled.PredictAggregate(req.Data.X[:n*features], features, n, req.Sel, counts, e.threads)
		res.ClassCounts = counts
	case req.Sel != nil:
		// Fused filter+score: dead rows are skipped before tree traversal.
		preds := make([]int, req.Sel.Count())
		compiled.PredictSel(req.Data.X[:n*features], features, req.Sel, preds, e.threads)
		res.Predictions = preds
	default:
		preds := make([]int, n)
		compiled.Predict(req.Data.X[:n*features], features, preds, e.threads)
		res.Predictions = preds
	}

	tl, err := e.Estimate(req.ModelStats(), int64(req.NumScored()))
	if err != nil {
		return nil, err
	}
	res.Timeline.Extend(tl)
	return res, nil
}

// Estimate implements backend.Backend.
func (e *Engine) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	if records < 0 {
		return nil, fmt.Errorf("cpusk: negative record count %d", records)
	}
	visits := stats.Visits(records)
	total := e.spec.SKLearnScoringTime(visits, stats.Features, e.threads)
	var tl sim.Timeline
	tl.Add("batch setup", sim.KindOverhead, e.spec.SKLearnBatchSetup)
	tl.Add("scoring", sim.KindCompute, total-e.spec.SKLearnBatchSetup)
	return &tl, nil
}
