// Package cpusk implements the Scikit-learn-style CPU scoring engine
// ("CPU_SKLearn" in the paper's figures): batch traversal of pointer-based
// trees, parallelized across worker goroutines, with a calibrated timing
// model for the Python-hosted library the paper measured.
//
// Fig. 6 Option 1: the CPU backend has no offload or transfer components —
// its timeline is a fixed batch-setup overhead plus compute.
package cpusk

import (
	"fmt"
	"runtime"
	"sync"

	"accelscore/internal/backend"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

// Engine is a Scikit-learn-style batch scorer.
type Engine struct {
	spec    hw.CPUSpec
	threads int
	name    string
}

// New returns an engine using threads scoring threads (the paper uses 52).
func New(spec hw.CPUSpec, threads int) *Engine {
	if threads <= 0 {
		threads = spec.HardwareThreads
	}
	name := "CPU_SKLearn"
	if threads == 1 {
		name = "CPU_SKLearn_1th"
	}
	return &Engine{spec: spec, threads: threads, name: name}
}

// Name implements backend.Backend.
func (e *Engine) Name() string { return e.name }

// Threads returns the configured scoring thread count.
func (e *Engine) Threads() int { return e.threads }

// Score implements backend.Backend: real goroutine-parallel batch traversal
// plus the calibrated timeline.
func (e *Engine) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	n := req.Data.NumRecords()
	preds := make([]int, n)

	workers := e.threads
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				preds[i] = req.Forest.PredictClass(req.Data.Row(i))
			}
		}(lo, hi)
	}
	wg.Wait()

	tl, err := e.Estimate(req.Forest.ComputeStats(), int64(n))
	if err != nil {
		return nil, err
	}
	res := &backend.Result{Predictions: preds}
	res.Timeline.Extend(tl)
	return res, nil
}

// Estimate implements backend.Backend.
func (e *Engine) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	if records < 0 {
		return nil, fmt.Errorf("cpusk: negative record count %d", records)
	}
	visits := stats.Visits(records)
	total := e.spec.SKLearnScoringTime(visits, stats.Features, e.threads)
	var tl sim.Timeline
	tl.Add("batch setup", sim.KindOverhead, e.spec.SKLearnBatchSetup)
	tl.Add("scoring", sim.KindCompute, total-e.spec.SKLearnBatchSetup)
	return &tl, nil
}
