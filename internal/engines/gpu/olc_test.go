package gpu_test

import (
	"testing"

	"accelscore/internal/backend"
	"accelscore/internal/engines/gpu"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

// TestTimelineSpansCarryOLCKinds pins the Fig. 6 contract the observability
// layer depends on: every span the GPU engines emit is tagged overhead,
// transfer or compute, and the three kinds account for the whole timeline.
func TestTimelineSpansCarryOLCKinds(t *testing.T) {
	spec := hw.DefaultGPU()
	stats := forest.SyntheticStats(32, 8, 28, 2)
	for _, e := range []backend.Backend{gpu.NewHummingbird(spec), gpu.NewRAPIDS(spec)} {
		tl, err := e.Estimate(stats, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range tl.Spans() {
			switch s.Kind {
			case sim.KindOverhead, sim.KindTransfer, sim.KindCompute:
			default:
				t.Errorf("%s: span %q has non-O/L/C kind %v", e.Name(), s.Name, s.Kind)
			}
		}
		sum := tl.TotalKind(sim.KindOverhead) + tl.TotalKind(sim.KindTransfer) + tl.TotalKind(sim.KindCompute)
		if sum != tl.Total() {
			t.Errorf("%s: O+L+C = %v, total = %v", e.Name(), sum, tl.Total())
		}
	}
}
