package gpu

import (
	"fmt"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/faults"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/kernel"
	"accelscore/internal/sim"
	"accelscore/internal/tensor"
)

// gatherRows compacts the selected rows of d into a dense matrix so a
// filtered batch runs the same tensor program a smaller table would.
func gatherRows(d *dataset.Dataset, sel *kernel.Selection) *tensor.Matrix {
	features := d.NumFeatures()
	out := tensor.New(sel.Count(), features)
	sel.ForEach(func(row, rank int) {
		copy(out.Data[rank*features:(rank+1)*features], d.Row(row))
	})
	return out
}

// Hummingbird is the GPU-HB backend: it compiles the forest into a tensor
// program (dense GEMM for shallow trees, perfect-tree traversal otherwise),
// executes it functionally, and charges simulated GPU time. Tensor kernels
// evaluate "multiple nodes and paths in the tree ... instead of a
// traditional sequential traversal, but may do redundant computations"
// (paper §III-A).
type Hummingbird struct {
	spec hw.GPUSpec
	// overlapTransfers enables the stream-overlap of H2D copies with kernel
	// execution (on by default; the ablation benches turn it off).
	overlapTransfers bool
}

// NewHummingbird returns a GPU-HB engine on the given device.
func NewHummingbird(spec hw.GPUSpec) *Hummingbird {
	return &Hummingbird{spec: spec, overlapTransfers: true}
}

// WithoutOverlap disables H2D/compute overlap (ablation).
func (h *Hummingbird) WithoutOverlap() *Hummingbird {
	c := *h
	c.overlapTransfers = false
	return &c
}

// Name implements backend.Backend.
func (h *Hummingbird) Name() string { return "GPU_HB" }

// Score implements backend.Backend: compiles and executes the tensor
// program.
func (h *Hummingbird) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// O boundary: runtime/kernel-launch invocation.
	if err := req.Boundary(h.Name(), faults.BoundaryInvoke); err != nil {
		return nil, err
	}
	prog, err := compileHB(req.Forest)
	if err != nil {
		return nil, err
	}
	// L boundary: the H2D input copy.
	if err := req.Boundary(h.Name(), faults.BoundaryTransfer); err != nil {
		return nil, err
	}
	// C boundary: the tensor kernels.
	if err := req.Boundary(h.Name(), faults.BoundaryCompute); err != nil {
		return nil, err
	}
	n := req.Data.NumRecords()
	sel := req.Sel
	scored := req.NumScored()
	preds := make([]int, scored)
	if prog.boosted {
		// Boosted ensembles aggregate margins instead of votes.
		margins := make([]float64, scored)
		for i := range margins {
			margins[i] = prog.base
		}
		for _, p := range prog.ptt {
			if sel != nil {
				sel.ForEach(func(row, rank int) {
					margins[rank] += float64(p.predictValue(req.Data.Row(row)))
				})
			} else {
				for i := 0; i < n; i++ {
					margins[i] += float64(p.predictValue(req.Data.Row(i)))
				}
			}
		}
		for i, m := range margins {
			if m > 0 {
				preds[i] = 1
			}
		}
	} else {
		votes := make([][]int, scored)
		for i := range votes {
			votes[i] = make([]int, prog.classes)
		}
		switch prog.strategy {
		case "gemm":
			// With a pushed-down filter only the surviving rows are gathered
			// into the input matrix, so the tensor program (and the simulated
			// H2D copy) never sees dead rows.
			x := &tensor.Matrix{Rows: n, Cols: req.Data.NumFeatures(), Data: req.Data.X}
			if sel != nil {
				x = gatherRows(req.Data, sel)
			}
			for _, g := range prog.gemm {
				classes := g.predictBatch(x)
				for i, c := range classes {
					votes[i][c]++
				}
			}
		default: // ptt
			for _, p := range prog.ptt {
				if sel != nil {
					sel.ForEach(func(row, rank int) {
						votes[rank][p.predict(req.Data.Row(row))]++
					})
				} else {
					for i := 0; i < n; i++ {
						votes[i][p.predict(req.Data.Row(i))]++
					}
				}
			}
		}
		for i := range preds {
			preds[i] = forest.Argmax(votes[i])
		}
	}

	tl, err := h.Estimate(req.ModelStats(), int64(scored))
	if err != nil {
		return nil, err
	}
	res := &backend.Result{Predictions: preds}
	res.Timeline.Extend(tl)
	return res, nil
}

// Estimate implements backend.Backend.
func (h *Hummingbird) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	if records < 0 {
		return nil, fmt.Errorf("gpu: negative record count %d", records)
	}
	var tl sim.Timeline
	tl.Add("hb invoke", sim.KindOverhead, h.spec.HBInvoke)

	inputBytes := records * int64(stats.Features) * dataset.BytesPerValue
	// Inputs beyond the device-memory budget run in multiple rounds, each
	// paying its own transfer setup and an extra dispatch.
	if batches := h.spec.InputBatches(inputBytes); batches > 1 {
		tl.Add("device-memory batching", sim.KindOverhead,
			time.Duration(batches-1)*(h.spec.Link.PerTransfer+h.spec.HBInvoke/4))
	}
	h2d := sim.Span{Name: "input transfer (H2D)", Kind: sim.KindTransfer, Duration: h.spec.Link.TransferTime(inputBytes)}

	var kernels sim.Span
	if stats.MaxDepth <= gemmDepthLimit {
		// GEMM strategy: per tree, a feature-gather GEMM (records x features
		// x internal) plus a leaf-selection GEMM (records x internal x
		// leaves) — mirroring gemmTree.flops.
		ni := int64(1<<uint(stats.MaxDepth)) - 1
		nl := int64(1 << uint(stats.MaxDepth))
		perTree := 2*records*int64(stats.Features)*ni + 2*records*ni*nl
		flops := int64(stats.Trees) * perTree
		kernels = sim.Span{Name: "tensor kernels (GEMM)", Kind: sim.KindCompute, Duration: h.spec.HBGEMMTime(flops)}
	} else {
		// PTT strategy always walks MaxDepth levels — redundant work on
		// shallow paths, which is exactly Hummingbird's trade.
		visits := records * int64(stats.Trees) * int64(stats.MaxDepth)
		kernels = sim.Span{Name: "tensor kernels (PTT)", Kind: sim.KindCompute, Duration: h.spec.HBTraversalTime(visits)}
	}

	if h.overlapTransfers {
		tl.Overlapped(h2d, kernels)
	} else {
		tl.AddSpan(h2d)
		tl.AddSpan(kernels)
	}
	resultBytes := records * 4
	tl.Add("result transfer (D2H)", sim.KindTransfer, h.spec.Link.TransferTime(resultBytes))
	return &tl, nil
}
