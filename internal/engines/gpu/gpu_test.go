package gpu

import (
	"math"
	"strings"
	"testing"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
)

func train(t testing.TB, d *dataset.Dataset, trees, depth int, seed uint64) *forest.Forest {
	t.Helper()
	f, err := forest.Train(d, forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      seed,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHummingbirdPTTMatchesForest(t *testing.T) {
	f := train(t, dataset.Iris(), 8, 10, 1)
	data := dataset.Iris().Replicate(400)
	hb := NewHummingbird(hw.DefaultGPU())
	res, err := hb.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("PTT prediction %d: %d != %d", i, res.Predictions[i], want[i])
		}
	}
}

func TestHummingbirdGEMMMatchesForest(t *testing.T) {
	// Depth <= 3 uses the dense GEMM tensor strategy.
	f := train(t, dataset.Iris(), 6, 3, 2)
	data := dataset.Iris().Replicate(200)
	hb := NewHummingbird(hw.DefaultGPU())
	res, err := hb.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("GEMM prediction %d: %d != %d", i, res.Predictions[i], want[i])
		}
	}
}

func TestHummingbirdHiggs(t *testing.T) {
	d := dataset.Higgs(800, 5)
	f := train(t, d, 6, 8, 3)
	hb := NewHummingbird(hw.DefaultGPU())
	res, err := hb.Score(&backend.Request{Forest: f, Data: d})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(d)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("HIGGS prediction %d differs", i)
		}
	}
}

func TestHummingbirdAnchor(t *testing.T) {
	// 1M x 128 trees x 10 levels: ~291 ms kernels -> total < 300ms-ish,
	// giving the paper's 7.5x over the 2.4s CPU baseline.
	hb := NewHummingbird(hw.DefaultGPU())
	tl, err := hb.Estimate(forest.SyntheticStats(128, 10, 4, 3), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Total(); got < 250*time.Millisecond || got > 350*time.Millisecond {
		t.Fatalf("HB 1Mx128t = %v, want ~295ms", got)
	}
}

func TestHummingbirdOverlapAblation(t *testing.T) {
	stats := forest.SyntheticStats(1, 10, 28, 2)
	hb := NewHummingbird(hw.DefaultGPU())
	with, _ := hb.Estimate(stats, 1_000_000)
	without, _ := hb.WithoutOverlap().Estimate(stats, 1_000_000)
	if without.Total() <= with.Total() {
		t.Fatalf("disabling overlap should cost time: %v vs %v", without.Total(), with.Total())
	}
}

func TestHummingbirdRejectsRegressor(t *testing.T) {
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2, Kind: forest.Regressor, Tree: forest.TrainConfig{MaxDepth: 4}, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	hb := NewHummingbird(hw.DefaultGPU())
	if _, err := hb.Score(&backend.Request{Forest: f, Data: dataset.Iris()}); err == nil {
		t.Fatal("regressor accepted")
	}
}

func TestRAPIDSMatchesForestOnHiggs(t *testing.T) {
	d := dataset.Higgs(600, 6)
	f := train(t, d, 8, 10, 5)
	r := NewRAPIDS(hw.DefaultGPU())
	res, err := r.Score(&backend.Request{Forest: f, Data: d})
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(d)
	for i := range want {
		if res.Predictions[i] != want[i] {
			t.Fatalf("RAPIDS prediction %d differs", i)
		}
	}
}

func TestRAPIDSRejectsMulticlass(t *testing.T) {
	// FIL supported binary classification only — the reason the paper runs
	// RAPIDS on HIGGS but not IRIS.
	f := train(t, dataset.Iris(), 2, 4, 6)
	r := NewRAPIDS(hw.DefaultGPU())
	if _, err := r.Score(&backend.Request{Forest: f, Data: dataset.Iris()}); err == nil {
		t.Fatal("3-class model accepted by RAPIDS")
	}
	if _, err := r.Estimate(forest.SyntheticStats(1, 4, 4, 3), 100); err == nil {
		t.Fatal("3-class estimate accepted by RAPIDS")
	}
}

func TestRAPIDSConversionDominatesSmallBatches(t *testing.T) {
	r := NewRAPIDS(hw.DefaultGPU())
	tl, err := r.Estimate(forest.SyntheticStats(1, 10, 28, 2), 100)
	if err != nil {
		t.Fatal(err)
	}
	conv := tl.Component("cuDF conversion")
	if conv < 100*time.Millisecond {
		t.Fatalf("cuDF conversion = %v, want ~120ms", conv)
	}
	if frac := float64(conv) / float64(tl.Total()); frac < 0.9 {
		t.Fatalf("conversion should dominate small batches, got %.0f%%", frac*100)
	}
}

func TestRAPIDSConvertAblation(t *testing.T) {
	stats := forest.SyntheticStats(128, 10, 28, 2)
	r := NewRAPIDS(hw.DefaultGPU())
	with, _ := r.Estimate(stats, 10_000)
	without, _ := r.WithoutConvertCost().Estimate(stats, 10_000)
	if with.Total()-without.Total() < 100*time.Millisecond {
		t.Fatalf("convert ablation delta = %v, want ~120ms", with.Total()-without.Total())
	}
}

func TestRAPIDSBeatsHBOnlyAtLargeN(t *testing.T) {
	// Paper §IV-C2: RAPIDS passes Hummingbird above ~700K records for the
	// 128-tree HIGGS model.
	stats := forest.SyntheticStats(128, 10, 28, 2)
	hb := NewHummingbird(hw.DefaultGPU())
	r := NewRAPIDS(hw.DefaultGPU())

	hbSmall, _ := hb.Estimate(stats, 100_000)
	rSmall, _ := r.Estimate(stats, 100_000)
	if hbSmall.Total() >= rSmall.Total() {
		t.Fatalf("at 100K records HB (%v) should beat RAPIDS (%v)", hbSmall.Total(), rSmall.Total())
	}
	hbBig, _ := hb.Estimate(stats, 1_000_000)
	rBig, _ := r.Estimate(stats, 1_000_000)
	if rBig.Total() >= hbBig.Total() {
		t.Fatalf("at 1M records RAPIDS (%v) should beat HB (%v)", rBig.Total(), hbBig.Total())
	}
}

func TestEstimateMatchesScoreTimeline(t *testing.T) {
	d := dataset.Higgs(300, 8)
	f := train(t, d, 4, 8, 9)
	stats := f.ComputeStats()
	for _, b := range []backend.Backend{NewHummingbird(hw.DefaultGPU()), NewRAPIDS(hw.DefaultGPU())} {
		res, err := b.Score(&backend.Request{Forest: f, Data: d})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		est, err := b.Estimate(stats, 300)
		if err != nil {
			t.Fatal(err)
		}
		if res.Timeline.Total() != est.Total() {
			t.Fatalf("%s: Score %v != Estimate %v", b.Name(), res.Timeline.Total(), est.Total())
		}
	}
}

func TestKernelStrategyNames(t *testing.T) {
	hb := NewHummingbird(hw.DefaultGPU())
	shallow, _ := hb.Estimate(forest.SyntheticStats(4, 3, 4, 3), 100)
	deep, _ := hb.Estimate(forest.SyntheticStats(4, 10, 4, 3), 100)
	names := func(tl interface{ ComponentNames() []string }) string {
		return strings.Join(tl.ComponentNames(), ",")
	}
	if !strings.Contains(names(shallow), "GEMM") {
		t.Fatalf("shallow model should use GEMM kernels: %s", names(shallow))
	}
	if !strings.Contains(names(deep), "PTT") {
		t.Fatalf("deep model should use PTT kernels: %s", names(deep))
	}
}

func BenchmarkHummingbirdScoreHiggs(b *testing.B) {
	d := dataset.Higgs(2000, 1)
	f := train(b, d, 8, 10, 1)
	hb := NewHummingbird(hw.DefaultGPU())
	req := &backend.Request{Forest: f, Data: d}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hb.Score(req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKernelProfilesMatchPaperObservations(t *testing.T) {
	// §IV-C1 nvprof analysis: HB has near-100% warp/SM efficiency, much
	// higher than RAPIDS; HB executes more instructions and moves more
	// L2/DRAM traffic; memory-dependency stalls dominate for both.
	hb := NewHummingbird(hw.DefaultGPU())
	rp := NewRAPIDS(hw.DefaultGPU())
	stats := forest.SyntheticStats(128, 10, 28, 2)
	const records = 1_000_000

	hp := hb.Profile(stats, records)
	rpp := rp.Profile(stats, records)

	if hp.WarpEfficiency < 0.95 {
		t.Fatalf("HB warp efficiency = %v, want ~1", hp.WarpEfficiency)
	}
	if rpp.WarpEfficiency >= hp.WarpEfficiency {
		t.Fatalf("RAPIDS warp efficiency %v should be below HB's %v",
			rpp.WarpEfficiency, hp.WarpEfficiency)
	}
	if hp.Instructions <= rpp.Instructions {
		t.Fatalf("HB instructions %d should exceed RAPIDS %d (redundant computation)",
			hp.Instructions, rpp.Instructions)
	}
	if hp.DRAMTrafficBytes <= rpp.DRAMTrafficBytes {
		t.Fatalf("HB DRAM traffic %d should exceed RAPIDS %d",
			hp.DRAMTrafficBytes, rpp.DRAMTrafficBytes)
	}
	if hp.DominantStall() != "memory dependency" || rpp.DominantStall() != "memory dependency" {
		t.Fatalf("dominant stalls = %q / %q, want memory dependency",
			hp.DominantStall(), rpp.DominantStall())
	}
	if rpp.KernelLaunches <= hp.KernelLaunches {
		t.Fatalf("RAPIDS launches %d should exceed HB %d (many invocations)",
			rpp.KernelLaunches, hp.KernelLaunches)
	}
}

func TestRAPIDSDivergenceGrowsWithComplexity(t *testing.T) {
	// "this may get exacerbated with increasing model complexity": warp
	// efficiency drops as trees are added and as paths get more uneven.
	rp := NewRAPIDS(hw.DefaultGPU())
	simple := rp.Profile(forest.SyntheticStats(1, 10, 28, 2), 10000)
	complexModel := rp.Profile(forest.SyntheticStats(128, 10, 28, 2), 10000)
	if complexModel.WarpEfficiency >= simple.WarpEfficiency {
		t.Fatalf("warp efficiency should drop with complexity: %v vs %v",
			complexModel.WarpEfficiency, simple.WarpEfficiency)
	}
	// Uneven paths (avg < max) diverge more than full trees.
	uneven := forest.Stats{Trees: 8, MaxDepth: 10, AvgPathLength: 5, Features: 28, Classes: 2}
	full := forest.SyntheticStats(8, 10, 28, 2)
	if rp.Profile(uneven, 10000).WarpEfficiency >= rp.Profile(full, 10000).WarpEfficiency {
		t.Fatal("uneven paths should diverge more than full trees")
	}
}

func TestDeviceMemoryBatching(t *testing.T) {
	// 200M HIGGS records x 28 features x 4B = ~21 GB > the P100's usable
	// memory: both GPU libraries must charge batching overhead; a 1M-record
	// input must not.
	stats := forest.SyntheticStats(8, 10, 28, 2)
	hb := NewHummingbird(hw.DefaultGPU())
	rp := NewRAPIDS(hw.DefaultGPU())

	small, err := hb.Estimate(stats, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if small.Component("device-memory batching") != 0 {
		t.Fatal("1M records should fit device memory")
	}
	huge, err := hb.Estimate(stats, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if huge.Component("device-memory batching") <= 0 {
		t.Fatal("oversized input not batched on HB")
	}
	hugeRp, err := rp.Estimate(stats, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if hugeRp.Component("device-memory batching") <= 0 {
		t.Fatal("oversized input not batched on RAPIDS")
	}
	// The spec arithmetic: 21GB over 12GB usable -> 2 batches.
	g := hw.DefaultGPU()
	if got := g.InputBatches(200_000_000 * 28 * 4); got != 2 {
		t.Fatalf("InputBatches = %d, want 2", got)
	}
	if got := g.InputBatches(100); got != 1 {
		t.Fatalf("small InputBatches = %d", got)
	}
}

// TestPTTPaddingHandlesNonFiniteFeatures is the regression test for the
// padded-leaf bug: a leaf above the final PTT level used to be padded with a
// left-only dummy chain (attr 0, x < +Inf), so a NaN or +Inf value in
// feature 0 failed the comparison, descended into the zero-initialized right
// half, and silently scored class 0. Both dummy subtrees must carry the
// leaf.
func TestPTTPaddingHandlesNonFiniteFeatures(t *testing.T) {
	// Root splits on feature 1; its LEFT child is a shallow class-1 leaf,
	// its right side is a depth-4 chain so the forest exceeds the GEMM depth
	// limit and compiles with the PTT strategy.
	leaf := func(c int) *forest.Node { return &forest.Node{Class: c} }
	deep := &forest.Node{Feature: 0, Threshold: 0,
		Left: leaf(0),
		Right: &forest.Node{Feature: 0, Threshold: 1,
			Left: leaf(0),
			Right: &forest.Node{Feature: 0, Threshold: 2,
				Left: leaf(0), Right: leaf(1)}}}
	f := &forest.Forest{
		Kind:        forest.Classifier,
		NumFeatures: 2,
		NumClasses:  2,
		Trees: []*forest.Tree{{
			Root:        &forest.Node{Feature: 1, Threshold: 0.5, Left: leaf(1), Right: deep},
			NumFeatures: 2,
			NumClasses:  2,
		}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	data := &dataset.Dataset{
		Name:         "nonfinite",
		FeatureNames: []string{"f0", "f1"},
		ClassNames:   []string{"c0", "c1"},
		// Every row routes LEFT at the root (f1 = 0 < 0.5) and must score
		// the shallow leaf's class 1 regardless of f0.
		X: []float32{
			inf, 0,
			-inf, 0,
			nan, 0,
			3, 0,
		},
	}
	hb := NewHummingbird(hw.DefaultGPU())
	res, err := hb.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compileHB(f)
	if err != nil {
		t.Fatal(err)
	}
	if prog.strategy != "ptt" {
		t.Fatalf("forest compiled with %q, the regression needs the PTT strategy", prog.strategy)
	}
	for i := 0; i < data.NumRecords(); i++ {
		want := f.PredictClass(data.Row(i))
		if want != 1 {
			t.Fatalf("row %d: naive traversal gives %d, test construction expects 1", i, want)
		}
		if res.Predictions[i] != want {
			t.Errorf("row %d (f0=%v): PTT predicted %d, naive traversal %d",
				i, data.Row(i)[0], res.Predictions[i], want)
		}
	}
}
