package gpu

import (
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
)

// KernelProfile reproduces the nvprof-style counters the paper analyzes in
// §IV-C1: "the average warp execution and SM efficiencies of most
// [Hummingbird] kernels are 100%, or close to that, and much higher than for
// some kernels with many invocations in RAPIDS. However, there were more
// instructions executed and more L2/DRAM traffic for Hummingbird. The main
// contributors to issue stalls for both were memory dependency (data
// request), execution dependency, and other stalls, with memory dependency
// stalls usually being the dominant one."
type KernelProfile struct {
	// Library identifies the profiled path ("GPU_HB", "GPU_RAPIDS").
	Library string
	// WarpEfficiency is the average active-thread fraction per warp.
	WarpEfficiency float64
	// SMEfficiency is the average streaming-multiprocessor occupancy.
	SMEfficiency float64
	// KernelLaunches counts device kernel invocations.
	KernelLaunches int64
	// Instructions counts simulated executed device instructions.
	Instructions int64
	// DRAMTrafficBytes estimates device-memory traffic.
	DRAMTrafficBytes int64
	// StallBreakdown maps stall reason -> fraction of issue stalls.
	StallBreakdown map[string]float64
}

// DominantStall returns the largest stall contributor.
func (p KernelProfile) DominantStall() string {
	best, bestV := "", -1.0
	for k, v := range p.StallBreakdown {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}

// instructionsPerVisitHB is the per-node-visit instruction cost of the
// tensorized traversal: gather + compare + index arithmetic, vectorized but
// padded to full depth (redundant work).
const instructionsPerVisitHB = 14

// instructionsPerVisitRAPIDS is FIL's lean hand-written traversal loop.
const instructionsPerVisitRAPIDS = 6

// Profile returns the simulated kernel counters for a Hummingbird run.
func (h *Hummingbird) Profile(stats forest.Stats, records int64) KernelProfile {
	// Tensor kernels are data-parallel with uniform control flow: warps stay
	// converged regardless of tree shape.
	padded := records * int64(stats.Trees) * int64(stats.MaxDepth)
	inputBytes := records * int64(stats.Features) * dataset.BytesPerValue
	// The padded node tables are re-streamed per record tile (the paper's
	// "more L2/DRAM traffic" observation).
	paddedModelBytes := int64(stats.Trees) * ((int64(1) << uint(stats.MaxDepth+1)) - 1) * 16
	tiles := records/4096 + 1
	return KernelProfile{
		Library:        h.Name(),
		WarpEfficiency: 0.99,
		SMEfficiency:   0.97,
		// One gather kernel per tree level plus the vote/argmax kernels.
		KernelLaunches:   int64(stats.MaxDepth) + 4,
		Instructions:     padded * instructionsPerVisitHB,
		DRAMTrafficBytes: inputBytes + paddedModelBytes*tiles,
		StallBreakdown: map[string]float64{
			"memory dependency":    0.52,
			"execution dependency": 0.31,
			"other":                0.17,
		},
	}
}

// Profile returns the simulated kernel counters for a RAPIDS FIL run.
func (r *RAPIDS) Profile(stats forest.Stats, records int64) KernelProfile {
	// Threads in a warp follow divergent paths down the trees; efficiency
	// degrades as paths diverge from the padded depth ("different threads
	// may follow divergent evaluation paths ... exacerbated with increasing
	// model complexity", §IV-C1).
	divergence := 0.0
	if stats.MaxDepth > 0 {
		divergence = 1 - stats.AvgPathLength/float64(stats.MaxDepth)
	}
	complexity := float64(stats.Trees) / 128.0
	if complexity > 1 {
		complexity = 1
	}
	warpEff := 0.85 - 0.25*divergence - 0.15*complexity
	if warpEff < 0.3 {
		warpEff = 0.3
	}
	visits := stats.Visits(records)
	inputBytes := records * int64(stats.Features) * dataset.BytesPerValue
	modelBytes := int64(stats.TotalNodes) * 16
	// FIL keeps the packed forest resident; traffic grows only when it
	// spills L2.
	spillFactor := int64(1)
	if modelBytes > r.spec.L2CacheBytes {
		spillFactor = records/8192 + 1
	}
	return KernelProfile{
		Library:        r.Name(),
		WarpEfficiency: warpEff,
		SMEfficiency:   0.88,
		// cuDF conversion kernels plus one FIL kernel per record chunk: the
		// "many invocations" the paper observed.
		KernelLaunches:   24 + records/65536 + 1,
		Instructions:     visits * instructionsPerVisitRAPIDS,
		DRAMTrafficBytes: inputBytes + modelBytes*spillFactor,
		StallBreakdown: map[string]float64{
			"memory dependency":    0.47,
			"execution dependency": 0.29,
			"other":                0.24,
		},
	}
}
