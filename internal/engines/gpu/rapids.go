package gpu

import (
	"fmt"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/faults"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/sim"
)

// RAPIDS is the GPU-RAPIDS backend: cuML's Forest Inference Library model.
// "Each thread block on the GPU processes one data sample, and all threads
// in a block cooperate in computing the prediction ... different threads may
// follow divergent evaluation paths down the tree" (paper §IV-C1). Its
// defining costs are the fixed cuDF dataframe conversion (~120 ms, §IV-C2)
// and cache-sensitive traversal throughput.
type RAPIDS struct {
	spec hw.GPUSpec
	// chargeConvert toggles the cuDF conversion cost (ablation: the paper
	// identifies it as the reason RAPIDS loses below ~700K records).
	chargeConvert bool
}

// NewRAPIDS returns a GPU-RAPIDS engine on the given device.
func NewRAPIDS(spec hw.GPUSpec) *RAPIDS {
	return &RAPIDS{spec: spec, chargeConvert: true}
}

// WithoutConvertCost disables the cuDF conversion charge (ablation).
func (r *RAPIDS) WithoutConvertCost() *RAPIDS {
	c := *r
	c.chargeConvert = false
	return &c
}

// Name implements backend.Backend.
func (r *RAPIDS) Name() string { return "GPU_RAPIDS" }

// Score implements backend.Backend. FIL at the paper's time supported
// binary classifiers only, which is why the paper runs RAPIDS on HIGGS but
// not IRIS; requests with more classes are rejected the same way.
func (r *RAPIDS) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Forest.NumClasses > r.spec.RAPIDSMaxClasses {
		return nil, fmt.Errorf("gpu: RAPIDS FIL supports at most %d classes, model has %d",
			r.spec.RAPIDSMaxClasses, req.Forest.NumClasses)
	}
	// O boundary: cuML invocation + cuDF conversion.
	if err := req.Boundary(r.Name(), faults.BoundaryInvoke); err != nil {
		return nil, err
	}
	// L boundary: the H2D dataframe copy.
	if err := req.Boundary(r.Name(), faults.BoundaryTransfer); err != nil {
		return nil, err
	}
	// C boundary: the FIL traversal kernels.
	if err := req.Boundary(r.Name(), faults.BoundaryCompute); err != nil {
		return nil, err
	}
	n := req.Data.NumRecords()
	scored := req.NumScored()
	preds := make([]int, scored)
	// One thread block per sample; trees cyclically distributed among the
	// block's threads, each walking its trees with early exit. FIL supports
	// both vote (random forest) and margin-sum (boosted) aggregation. A
	// pushed-down filter drops dead rows before any block is scheduled.
	if req.Sel != nil {
		req.Sel.ForEach(func(row, rank int) {
			preds[rank] = req.Forest.PredictClass(req.Data.Row(row))
		})
	} else {
		for i := 0; i < n; i++ {
			preds[i] = req.Forest.PredictClass(req.Data.Row(i))
		}
	}

	tl, err := r.Estimate(req.ModelStats(), int64(scored))
	if err != nil {
		return nil, err
	}
	res := &backend.Result{Predictions: preds}
	res.Timeline.Extend(tl)
	return res, nil
}

// Estimate implements backend.Backend.
func (r *RAPIDS) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	if records < 0 {
		return nil, fmt.Errorf("gpu: negative record count %d", records)
	}
	if stats.Classes > r.spec.RAPIDSMaxClasses {
		return nil, fmt.Errorf("gpu: RAPIDS FIL supports at most %d classes, model has %d",
			r.spec.RAPIDSMaxClasses, stats.Classes)
	}
	var tl sim.Timeline
	tl.Add("cuml invoke", sim.KindOverhead, r.spec.RAPIDSInvoke)
	inputBytes := records * int64(stats.Features) * dataset.BytesPerValue
	if r.chargeConvert {
		// NumPy -> cuDF dataframe conversion: the separate pre-processing
		// step the paper measures at ~120 ms.
		tl.Add("cuDF conversion", sim.KindOverhead, r.spec.RAPIDSConvertTime(inputBytes))
	}
	if batches := r.spec.InputBatches(inputBytes); batches > 1 {
		tl.Add("device-memory batching", sim.KindOverhead,
			time.Duration(batches-1)*(r.spec.Link.PerTransfer+r.spec.RAPIDSInvoke))
	}
	tl.Add("input transfer (H2D)", sim.KindTransfer, r.spec.Link.TransferTime(inputBytes))
	// FIL's working set: the packed forest nodes (16B each); spilling past
	// L2 degrades traversal throughput (paper §IV-C1/C3 cache discussion).
	modelBytes := int64(stats.TotalNodes) * 16
	visits := stats.Visits(records)
	tl.Add("traversal kernels", sim.KindCompute, r.spec.RAPIDSTraversalTime(visits, modelBytes))
	tl.Add("result transfer (D2H)", sim.KindTransfer, r.spec.Link.TransferTime(records*4))
	return &tl, nil
}
