// Package gpu implements the two GPU scoring libraries the paper evaluates
// on the Tesla P100: Hummingbird ("GPU-HB"), which compiles forests into
// tensor programs, and RAPIDS cuML/FIL ("GPU-RAPIDS"), which runs
// divergence-prone traversal kernels after a costly cuDF conversion.
//
// Both engines really compute predictions (the Hummingbird path executes
// the compiled tensor program; the RAPIDS path walks trees like a FIL
// thread block) and both charge simulated time from the calibrated
// hw.GPUSpec models.
package gpu

import (
	"fmt"
	"math"

	"accelscore/internal/forest"
	"accelscore/internal/tensor"
)

// gemmDepthLimit is the deepest tree compiled with the dense GEMM strategy;
// deeper trees use PerfectTreeTraversal, mirroring Hummingbird's own
// strategy heuristics (Nakandala et al., OSDI 2020).
const gemmDepthLimit = 3

// pttTree is one tree compiled for the PerfectTreeTraversal strategy: the
// tree is padded to a perfect binary tree of fixed depth and evaluation
// always descends exactly Depth levels — Hummingbird's "redundant
// computation" trade (paper §III-A).
type pttTree struct {
	depth     int
	attrs     []int32   // 2^depth - 1 internal slots
	thresh    []float32 // 2^depth - 1 internal slots
	leafClass []int32   // 2^depth leaf slots
	// leafValue carries the regression/boosting contribution of each leaf
	// slot for gradient-boosted ensembles.
	leafValue []float32
}

// compilePTT pads tree t to a perfect tree of the given depth.
func compilePTT(t *forest.Tree, depth int) *pttTree {
	internal := (1 << uint(depth)) - 1
	leaves := 1 << uint(depth)
	p := &pttTree{
		depth:     depth,
		attrs:     make([]int32, internal),
		thresh:    make([]float32, internal),
		leafClass: make([]int32, leaves),
		leafValue: make([]float32, leaves),
	}
	p.fill(t.Root, 0, 0)
	return p
}

// fill recursively writes the padded slots. A leaf encountered above the
// final level becomes a subtree of dummy nodes (attr 0, +Inf threshold)
// whose every slot holds the leaf's class.
func (p *pttTree) fill(n *forest.Node, idx, depth int) {
	if depth == p.depth {
		p.leafClass[idx-len(p.attrs)] = int32(n.Class)
		p.leafValue[idx-len(p.attrs)] = float32(n.Value)
		return
	}
	if n.IsLeaf() {
		p.attrs[idx] = 0
		p.thresh[idx] = float32(math.Inf(1)) // x[0] < +Inf: finite inputs go left
		// Pad BOTH subtrees with the leaf: a NaN or +Inf feature value fails
		// the < +Inf comparison and descends right, so a left-only dummy
		// chain would land such rows on zero-initialized slots and silently
		// report class 0 instead of the real leaf.
		p.fill(n, 2*idx+1, depth+1)
		p.fill(n, 2*idx+2, depth+1)
		return
	}
	p.attrs[idx] = int32(n.Feature)
	p.thresh[idx] = n.Threshold
	p.fill(n.Left, 2*idx+1, depth+1)
	p.fill(n.Right, 2*idx+2, depth+1)
}

// predict descends exactly depth levels — no early exit, exactly like the
// tensorized gather kernels.
func (p *pttTree) predict(row []float32) int {
	return int(p.leafClass[p.leafSlot(row)])
}

// predictValue returns the reached leaf's regression/boosting value.
func (p *pttTree) predictValue(row []float32) float32 {
	return p.leafValue[p.leafSlot(row)]
}

// leafSlot walks the padded tree and returns the leaf-array index.
func (p *pttTree) leafSlot(row []float32) int {
	idx := 0
	for d := 0; d < p.depth; d++ {
		if row[p.attrs[idx]] < p.thresh[idx] {
			idx = 2*idx + 1
		} else {
			idx = 2*idx + 2
		}
	}
	return idx - len(p.attrs)
}

// gemmTree is one tree compiled to Hummingbird's GEMM strategy: dense
// matrices relating features -> internal-node decisions -> leaf selection.
type gemmTree struct {
	// a is (features x internal): one-hot rows selecting each internal
	// node's comparison attribute.
	a *tensor.Matrix
	// b holds each internal node's threshold.
	b []float32
	// c is (internal x leaves): +1 where the path to the leaf takes the
	// node's left edge, -1 for the right edge, 0 off-path.
	c *tensor.Matrix
	// expected holds, per leaf, the number of left edges on its path; a
	// row of decisions d selects leaf l iff (d*c)[l] == expected[l].
	expected []float32
	// leafClass holds each leaf's class id.
	leafClass []int32
}

// compileGEMM lowers one tree (depth <= gemmDepthLimit enforced by caller).
func compileGEMM(t *forest.Tree) *gemmTree {
	var internals []*forest.Node
	var leaves []*forest.Node
	var walk func(n *forest.Node)
	walk = func(n *forest.Node) {
		if n.IsLeaf() {
			leaves = append(leaves, n)
			return
		}
		internals = append(internals, n)
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)

	ni, nl := len(internals), len(leaves)
	idxOf := make(map[*forest.Node]int, ni)
	for i, n := range internals {
		idxOf[n] = i
	}
	g := &gemmTree{
		a:         tensor.New(t.NumFeatures, ni),
		b:         make([]float32, ni),
		c:         tensor.New(ni, nl),
		expected:  make([]float32, nl),
		leafClass: make([]int32, nl),
	}
	for i, n := range internals {
		g.a.Set(n.Feature, i, 1)
		g.b[i] = n.Threshold
	}
	// For every leaf, trace its root path writing +-1 into c.
	var trace func(n *forest.Node, leafIdx int, path []*forest.Node, dirs []bool) bool
	leafIndex := make(map[*forest.Node]int, nl)
	for i, l := range leaves {
		leafIndex[l] = i
	}
	trace = func(n *forest.Node, leafIdx int, path []*forest.Node, dirs []bool) bool {
		if n.IsLeaf() {
			if leafIndex[n] != leafIdx {
				return false
			}
			for k, pn := range path {
				i := idxOf[pn]
				if dirs[k] {
					g.c.Set(i, leafIdx, 1)
					g.expected[leafIdx]++
				} else {
					g.c.Set(i, leafIdx, -1)
				}
			}
			return true
		}
		if trace(n.Left, leafIdx, append(path, n), append(dirs, true)) {
			return true
		}
		return trace(n.Right, leafIdx, append(path, n), append(dirs, false))
	}
	for i, l := range leaves {
		g.leafClass[i] = int32(l.Class)
		trace(t.Root, i, nil, nil)
	}
	return g
}

// predictBatch evaluates the compiled tree over an input matrix
// (records x features) using real tensor operations, returning one class per
// record.
func (g *gemmTree) predictBatch(x *tensor.Matrix) []int {
	xa := tensor.MatMul(x, g.a)               // records x internal: gathered feature values
	p := tensor.LessBroadcast(xa, g.b)        // records x internal: decision bits
	s := tensor.MatMul(p, g.c)                // records x leaves: path scores
	m := tensor.EqualBroadcast(s, g.expected) // records x leaves: leaf hit mask
	out := make([]int, x.Rows)
	for r := 0; r < x.Rows; r++ {
		base := r * m.Cols
		out[r] = 0
		for l := 0; l < m.Cols; l++ {
			if m.Data[base+l] == 1 {
				out[r] = int(g.leafClass[l])
				break
			}
		}
	}
	return out
}

// flops returns the multiply-add count of one batched evaluation, charged to
// the simulated GEMM rate.
func (g *gemmTree) flops(records int) int64 {
	return tensor.FlopCount(records, g.a.Rows, g.a.Cols) +
		tensor.FlopCount(records, g.c.Rows, g.c.Cols)
}

// hbProgram is a forest compiled for Hummingbird.
type hbProgram struct {
	strategy string // "gemm" or "ptt"
	depth    int    // padded depth for ptt
	ptt      []*pttTree
	gemm     []*gemmTree
	classes  int
	// boosted selects margin summation over majority vote, with base the
	// ensemble's initial log-odds.
	boosted bool
	base    float64
}

// compileHB selects the strategy by tree depth and compiles every tree.
// Classifier and boosted ensembles are supported (§III-A: "decision tree,
// random forest, and gradient boost models"); regressors are not part of
// the paper's pipeline.
func compileHB(f *forest.Forest) (*hbProgram, error) {
	if f.Kind != forest.Classifier && f.Kind != forest.Boosted {
		return nil, fmt.Errorf("gpu: hummingbird path supports classifier and boosted ensembles, got %s", f.Kind)
	}
	maxDepth := 0
	for _, t := range f.Trees {
		if d := t.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth == 0 {
		maxDepth = 1 // stump-only ensembles still need one padded level
	}
	prog := &hbProgram{
		classes: f.NumClasses,
		depth:   maxDepth,
		boosted: f.Kind == forest.Boosted,
		base:    f.BaseScore,
	}
	if maxDepth <= gemmDepthLimit && !prog.boosted {
		prog.strategy = "gemm"
		for _, t := range f.Trees {
			prog.gemm = append(prog.gemm, compileGEMM(t))
		}
		return prog, nil
	}
	prog.strategy = "ptt"
	for _, t := range f.Trees {
		prog.ptt = append(prog.ptt, compilePTT(t, maxDepth))
	}
	return prog, nil
}
