// Package kernel implements the shared flat-traversal scoring kernel every
// functional CPU path uses: a forest lowered once into parallel int32/float32
// node arrays (the cache-friendly layout database-integrated inference
// platforms compile trees into) and scored with a row-block x tree-block
// loop fanned out over a GOMAXPROCS-sized worker pool.
//
// The package is deliberately free of repo dependencies: internal/forest
// lowers its pointer trees into a Compiled via the builder API (BeginTree /
// EmitLeaf / EmitSplit / SetChildren / Seal), and every consumer — the
// Scikit-learn and ONNX CPU engines, forest batch prediction, the pipeline's
// compiled-model cache — shares the same traversal core.
package kernel

import (
	"fmt"
	"runtime"
	"sync"
)

// Blocking parameters of the traversal loop. A row block's feature slices
// and vote counters stay cache-resident while a tree block's node arrays are
// streamed over them, so neither the model nor the data thrashes the cache
// when both are large.
const (
	rowBlockSize  = 64
	treeBlockSize = 16
)

// maxNodes bounds the flat arrays so node indices fit comfortably in int32.
const maxNodes = 1 << 30

// Compiled is a forest lowered into flat parallel node arrays. Leaves are
// encoded in the child links: rightChild < 0 marks a leaf, and the class id
// is recoverable as -(leftChild+1). A Compiled is immutable after Seal and
// safe for concurrent use by any number of Predict calls.
type Compiled struct {
	// treeStart[i] is the first node index of tree i; tree i occupies
	// [treeStart[i], treeStart[i+1]).
	treeStart []int32
	// Parallel node arrays.
	featureIdx []int32
	threshold  []float32
	leftChild  []int32
	rightChild []int32
	value      []float64
	class      []int32

	classes int
	boosted bool
	base    float64
	sealed  bool
}

// New returns an empty compiled form ready for tree emission. classes is the
// vote-vector width (at least 1); boosted selects margin aggregation with
// base as the initial log-odds.
func New(classes int, boosted bool, base float64) *Compiled {
	if classes < 1 {
		classes = 1
	}
	return &Compiled{classes: classes, boosted: boosted, base: base}
}

// BeginTree opens the next tree's node extent.
func (c *Compiled) BeginTree() {
	c.treeStart = append(c.treeStart, int32(len(c.featureIdx)))
}

// EmitLeaf appends a leaf node and returns its index.
func (c *Compiled) EmitLeaf(class int32, value float64) int32 {
	idx := int32(len(c.featureIdx))
	c.featureIdx = append(c.featureIdx, 0)
	c.threshold = append(c.threshold, 0)
	c.leftChild = append(c.leftChild, -class-1)
	c.rightChild = append(c.rightChild, -1)
	c.value = append(c.value, value)
	c.class = append(c.class, class)
	return idx
}

// EmitSplit appends an internal node and returns its index; the children are
// patched in later with SetChildren once their subtrees are emitted.
func (c *Compiled) EmitSplit(feature int32, threshold float32) int32 {
	idx := int32(len(c.featureIdx))
	c.featureIdx = append(c.featureIdx, feature)
	c.threshold = append(c.threshold, threshold)
	c.leftChild = append(c.leftChild, 0)
	c.rightChild = append(c.rightChild, 0)
	c.value = append(c.value, 0)
	c.class = append(c.class, 0)
	return idx
}

// SetChildren links an internal node to its emitted subtrees.
func (c *Compiled) SetChildren(parent, left, right int32) {
	c.leftChild[parent] = left
	c.rightChild[parent] = right
}

// Seal closes the last tree's extent and freezes the compiled form.
func (c *Compiled) Seal() error {
	if len(c.featureIdx) > maxNodes {
		return fmt.Errorf("kernel: ensemble too large to flatten (%d nodes)", len(c.featureIdx))
	}
	c.treeStart = append(c.treeStart, int32(len(c.featureIdx)))
	c.sealed = true
	return nil
}

// NumTrees returns the compiled tree count.
func (c *Compiled) NumTrees() int {
	if len(c.treeStart) == 0 {
		return 0
	}
	if c.sealed {
		return len(c.treeStart) - 1
	}
	return len(c.treeStart)
}

// NumNodes returns the total flattened node count.
func (c *Compiled) NumNodes() int { return len(c.featureIdx) }

// NumClasses returns the vote-vector width.
func (c *Compiled) NumClasses() int { return c.classes }

// Boosted reports margin (vs vote) aggregation.
func (c *Compiled) Boosted() bool { return c.boosted }

// walk descends one flattened tree for one row and returns the leaf index.
func (c *Compiled) walk(root int32, row []float32) int32 {
	idx := root
	for {
		right := c.rightChild[idx]
		if right < 0 {
			return idx
		}
		if row[c.featureIdx[idx]] < c.threshold[idx] {
			idx = c.leftChild[idx]
		} else {
			idx = right
		}
	}
}

// PredictRow scores a single row. votes is scratch space of at least
// NumClasses entries (ignored for boosted ensembles; pass nil to allocate).
func (c *Compiled) PredictRow(row []float32, votes []int) int {
	trees := c.NumTrees()
	if c.boosted {
		margin := c.base
		for t := 0; t < trees; t++ {
			margin += c.value[c.walk(c.treeStart[t], row)]
		}
		if margin > 0 {
			return 1
		}
		return 0
	}
	if len(votes) < c.classes {
		votes = make([]int, c.classes)
	}
	for i := 0; i < c.classes; i++ {
		votes[i] = 0
	}
	for t := 0; t < trees; t++ {
		votes[c.class[c.walk(c.treeStart[t], row)]]++
	}
	return argmax(votes)
}

// Predict scores n = len(out) rows of the row-major feature matrix x
// (features values per row) into out, using up to workers goroutines
// (clamped to GOMAXPROCS; <= 0 means GOMAXPROCS). The traversal is blocked:
// each worker scores contiguous row blocks, streaming tree blocks over each
// row block so tree nodes are reused across the whole block while its vote
// counters stay in registers/L1.
func (c *Compiled) Predict(x []float32, features int, out []int, workers int) {
	n := len(out)
	if n == 0 {
		return
	}
	maxProcs := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers > maxProcs {
		workers = maxProcs
	}
	numBlocks := (n + rowBlockSize - 1) / rowBlockSize
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers <= 1 {
		c.predictRange(x, features, out, 0, n)
		return
	}
	blocksPerWorker := (numBlocks + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * blocksPerWorker * rowBlockSize
		hi := lo + blocksPerWorker*rowBlockSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.predictRange(x, features, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// predictRange scores rows [lo, hi) with the blocked loop. The node arrays
// are hoisted into locals and the per-(tree,row) walk is written inline:
// walk's loop keeps it from being compiler-inlined, and the call plus the
// repeated loads through the receiver cost ~40% of traversal time on the
// hot path.
func (c *Compiled) predictRange(x []float32, features int, out []int, lo, hi int) {
	trees := c.NumTrees()
	feat, thr := c.featureIdx, c.threshold
	left, right := c.leftChild, c.rightChild
	if c.boosted {
		val := c.value
		var margins [rowBlockSize]float64
		for base := lo; base < hi; base += rowBlockSize {
			end := base + rowBlockSize
			if end > hi {
				end = hi
			}
			nb := end - base
			for r := 0; r < nb; r++ {
				margins[r] = c.base
			}
			for tb := 0; tb < trees; tb += treeBlockSize {
				te := tb + treeBlockSize
				if te > trees {
					te = trees
				}
				for t := tb; t < te; t++ {
					root := c.treeStart[t]
					for r := 0; r < nb; r++ {
						row := x[(base+r)*features : (base+r+1)*features]
						idx := root
						for {
							rc := right[idx]
							if rc < 0 {
								break
							}
							if row[feat[idx]] < thr[idx] {
								idx = left[idx]
							} else {
								idx = rc
							}
						}
						margins[r] += val[idx]
					}
				}
			}
			for r := 0; r < nb; r++ {
				if margins[r] > 0 {
					out[base+r] = 1
				} else {
					out[base+r] = 0
				}
			}
		}
		return
	}

	class := c.class
	classes := c.classes
	vp := getVotes(rowBlockSize * classes)
	votes := *vp
	for base := lo; base < hi; base += rowBlockSize {
		end := base + rowBlockSize
		if end > hi {
			end = hi
		}
		nb := end - base
		for i := range votes[:nb*classes] {
			votes[i] = 0
		}
		for tb := 0; tb < trees; tb += treeBlockSize {
			te := tb + treeBlockSize
			if te > trees {
				te = trees
			}
			for t := tb; t < te; t++ {
				root := c.treeStart[t]
				for r := 0; r < nb; r++ {
					row := x[(base+r)*features : (base+r+1)*features]
					idx := root
					for {
						rc := right[idx]
						if rc < 0 {
							break
						}
						if row[feat[idx]] < thr[idx] {
							idx = left[idx]
						} else {
							idx = rc
						}
					}
					votes[r*classes+int(class[idx])]++
				}
			}
		}
		for r := 0; r < nb; r++ {
			out[base+r] = argmax32(votes[r*classes : (r+1)*classes])
		}
	}
	putVotes(vp)
}

// argmax returns the index of the maximum count, lowest index winning ties —
// the tie convention shared by every backend.
func argmax(counts []int) int {
	best := 0
	for i, v := range counts {
		if v > counts[best] {
			best = i
		}
	}
	return best
}

func argmax32(counts []int32) int {
	best := 0
	for i, v := range counts {
		if v > counts[best] {
			best = i
		}
	}
	return best
}
