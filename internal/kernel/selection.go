// Row-selection bitmaps and the fused (filter → traverse → aggregate)
// scoring entry points. The fused query path evaluates pushed-down
// predicates block-wise, records survivors in a Selection whose words line
// up 1:1 with the kernel's 64-row traversal blocks, and then scores only
// the surviving rows: a block whose word is zero is skipped before any tree
// node is touched.
package kernel

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
)

// PredOp enumerates the comparison operators a pushed-down predicate may
// use. The numeric semantics mirror the SQL layer's comparisons (including
// the epsilon applied to = and <>) so a fused filter selects exactly the
// rows a post-scoring WHERE would keep.
type PredOp uint8

const (
	PredEQ PredOp = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

// predEps matches the SQL layer's equality tolerance for REAL comparisons.
const predEps = 1e-9

// String renders the operator in SQL syntax.
func (op PredOp) String() string {
	switch op {
	case PredEQ:
		return "="
	case PredNE:
		return "<>"
	case PredLT:
		return "<"
	case PredLE:
		return "<="
	case PredGT:
		return ">"
	case PredGE:
		return ">="
	}
	return "?"
}

// ParsePredOp maps a SQL comparison operator to its PredOp.
func ParsePredOp(op string) (PredOp, error) {
	switch op {
	case "=":
		return PredEQ, nil
	case "<>":
		return PredNE, nil
	case "<":
		return PredLT, nil
	case "<=":
		return PredLE, nil
	case ">":
		return PredGT, nil
	case ">=":
		return PredGE, nil
	}
	return 0, fmt.Errorf("kernel: unsupported predicate operator %q", op)
}

// evalPred applies op between a row value and the predicate constant with
// the SQL layer's semantics: = and <> compare within predEps, and every
// comparison involving NaN is false (so NaN rows never match, on either the
// fused or the post-filter path).
func evalPred(a float64, op PredOp, b float64) bool {
	switch op {
	case PredEQ:
		return math.Abs(a-b) <= predEps
	case PredNE:
		return math.Abs(a-b) > predEps
	case PredLT:
		return a < b
	case PredLE:
		return a <= b
	case PredGT:
		return a > b
	case PredGE:
		return a >= b
	}
	return false
}

// Predicate is one pushed-down conjunct. When Feature >= 0 the operand is
// read straight out of the row-major feature matrix the kernel already
// streams (true fusion: no separate column pass). Otherwise Col supplies
// the operand values for a non-feature column, one per row.
type Predicate struct {
	Feature int       // feature index into the row, or -1 to use Col
	Col     []float64 // operand column when Feature < 0; len >= row count
	Op      PredOp
	Value   float64
}

// Eval reports whether row r (with feature slice row) satisfies the
// predicate.
func (p Predicate) Eval(r int, row []float32) bool {
	var a float64
	if p.Feature >= 0 {
		a = float64(row[p.Feature])
	} else {
		a = p.Col[r]
	}
	return evalPred(a, p.Op, p.Value)
}

// Selection is an immutable row bitmap whose 64-bit words are aligned to
// the kernel's row blocks (rowBlockSize == 64, so word b covers exactly
// traversal block b). prefix[b] counts selected rows before word b, which
// lets parallel workers compute dense output offsets without coordination.
type Selection struct {
	words  []uint64
	prefix []int32 // len == len(words)+1
	n      int
}

// selWordBits is the bitmap word width; it must equal rowBlockSize so the
// fused loop can test one word per traversal block.
const selWordBits = 64

// SelectionAlign is the row alignment Selection.Slice requires: callers
// that shard a selected batch (the FPGA cluster fan-out) must cut on
// multiples of this so slicing stays pure word arithmetic.
const SelectionAlign = selWordBits

// BuildSelection evaluates the conjunction of preds over n rows of the
// row-major matrix x (features values per row) block-wise and returns the
// surviving-row bitmap. With no predicates every row is selected. x may be
// nil when every predicate reads an aux column.
func BuildSelection(n int, preds []Predicate, x []float32, features int) *Selection {
	return SelectionFromFunc(n, func(r int) bool {
		var row []float32
		if x != nil {
			row = x[r*features : (r+1)*features]
		}
		for i := range preds {
			if !preds[i].Eval(r, row) {
				return false
			}
		}
		return true
	})
}

// SelectionFromFunc builds a bitmap from an arbitrary keep function;
// conformance checks use it to exercise selections the predicate builder
// would not produce.
func SelectionFromFunc(n int, keep func(row int) bool) *Selection {
	s := newSelection(n)
	for b := range s.words {
		base := b * selWordBits
		end := base + selWordBits
		if end > n {
			end = n
		}
		var w uint64
		for r := base; r < end; r++ {
			if keep(r) {
				w |= 1 << uint(r-base)
			}
		}
		s.words[b] = w
	}
	s.finalize()
	return s
}

func newSelection(n int) *Selection {
	if n < 0 {
		n = 0
	}
	nw := (n + selWordBits - 1) / selWordBits
	return &Selection{words: make([]uint64, nw), n: n}
}

func (s *Selection) finalize() {
	s.prefix = make([]int32, len(s.words)+1)
	var c int32
	for i, w := range s.words {
		s.prefix[i] = c
		c += int32(bits.OnesCount64(w))
	}
	s.prefix[len(s.words)] = c
}

// Len returns the number of rows the selection covers.
func (s *Selection) Len() int { return s.n }

// Count returns the number of selected rows.
func (s *Selection) Count() int {
	if len(s.prefix) == 0 {
		return 0
	}
	return int(s.prefix[len(s.prefix)-1])
}

// Selected reports whether row i survives the filter.
func (s *Selection) Selected(i int) bool {
	return s.words[i/selWordBits]&(1<<uint(i%selWordBits)) != 0
}

// Rank returns the number of selected rows strictly before row i. i may
// equal Len(), in which case Rank returns Count().
func (s *Selection) Rank(i int) int {
	if i >= s.n {
		return s.Count()
	}
	w := i / selWordBits
	mask := uint64(1)<<uint(i%selWordBits) - 1
	return int(s.prefix[w]) + bits.OnesCount64(s.words[w]&mask)
}

// CountRange returns the number of selected rows in [lo, hi).
func (s *Selection) CountRange(lo, hi int) int {
	return s.Rank(hi) - s.Rank(lo)
}

// Slice returns the selection restricted to rows [lo, hi), re-based to row
// zero. lo must be a multiple of 64 (the FPGA cluster aligns its shard
// boundaries to traversal blocks so slicing stays pure word arithmetic).
func (s *Selection) Slice(lo, hi int) *Selection {
	if lo%selWordBits != 0 {
		panic(fmt.Sprintf("kernel: Selection.Slice lo %d not block-aligned", lo))
	}
	if hi > s.n {
		hi = s.n
	}
	if hi < lo {
		hi = lo
	}
	out := newSelection(hi - lo)
	copy(out.words, s.words[lo/selWordBits:])
	if tail := (hi - lo) % selWordBits; tail != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= uint64(1)<<uint(tail) - 1
	}
	out.finalize()
	return out
}

// ForEach calls fn for every selected row in ascending order, passing the
// row index and its dense rank (0-based position among selected rows).
// Per-row engines use it to skip dead rows without bitmap arithmetic.
func (s *Selection) ForEach(fn func(row, rank int)) {
	rank := 0
	for b, w := range s.words {
		base := b * selWordBits
		for w != 0 {
			fn(base+bits.TrailingZeros64(w), rank)
			rank++
			w &= w - 1
		}
	}
}

// votePool recycles the per-block vote counters so steady-state Predict
// calls allocate nothing; buffers grow to the widest class count seen and
// then stick.
var votePool = sync.Pool{
	New: func() any {
		s := make([]int32, 0, 8*rowBlockSize)
		return &s
	},
}

func getVotes(n int) *[]int32 {
	p := votePool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putVotes(p *[]int32) { votePool.Put(p) }

// scoreBlock walks every tree for the nb rows whose absolute indices are
// listed in rows, writing predicted classes into out[:nb]. votes is scratch
// of at least nb*classes entries (unused for boosted ensembles). The tree
// loop is blocked exactly like predictRange so both paths share cache
// behavior and tie-break rules.
func (c *Compiled) scoreBlock(x []float32, features int, rows []int32, nb int, out []int, votes []int32) {
	trees := c.NumTrees()
	feat, thr := c.featureIdx, c.threshold
	left, right := c.leftChild, c.rightChild
	if c.boosted {
		val := c.value
		var margins [rowBlockSize]float64
		for r := 0; r < nb; r++ {
			margins[r] = c.base
		}
		for tb := 0; tb < trees; tb += treeBlockSize {
			te := tb + treeBlockSize
			if te > trees {
				te = trees
			}
			for t := tb; t < te; t++ {
				root := c.treeStart[t]
				for r := 0; r < nb; r++ {
					row := x[int(rows[r])*features : (int(rows[r])+1)*features]
					idx := root
					for {
						rc := right[idx]
						if rc < 0 {
							break
						}
						if row[feat[idx]] < thr[idx] {
							idx = left[idx]
						} else {
							idx = rc
						}
					}
					margins[r] += val[idx]
				}
			}
		}
		for r := 0; r < nb; r++ {
			if margins[r] > 0 {
				out[r] = 1
			} else {
				out[r] = 0
			}
		}
		return
	}

	class := c.class
	classes := c.classes
	for i := range votes[:nb*classes] {
		votes[i] = 0
	}
	for tb := 0; tb < trees; tb += treeBlockSize {
		te := tb + treeBlockSize
		if te > trees {
			te = trees
		}
		for t := tb; t < te; t++ {
			root := c.treeStart[t]
			for r := 0; r < nb; r++ {
				row := x[int(rows[r])*features : (int(rows[r])+1)*features]
				idx := root
				for {
					rc := right[idx]
					if rc < 0 {
						break
					}
					if row[feat[idx]] < thr[idx] {
						idx = left[idx]
					} else {
						idx = rc
					}
				}
				votes[r*classes+int(class[idx])]++
			}
		}
	}
	for r := 0; r < nb; r++ {
		out[r] = argmax32(votes[r*classes : (r+1)*classes])
	}
}

// gatherBlock extracts the selected row indices of the 64-row block
// starting at base into rows, returning the survivor count.
func gatherBlock(w uint64, base int, rows *[rowBlockSize]int32) int {
	nb := 0
	for ; w != 0; w &= w - 1 {
		rows[nb] = int32(base + bits.TrailingZeros64(w))
		nb++
	}
	return nb
}

// PredictSel scores only the rows selected by sel, writing their
// predictions densely (ascending row order) into out, which must have
// sel.Count() entries. x is the full row-major matrix covering sel.Len()
// rows; unselected rows are never touched — a 64-row block with no
// survivors is skipped before any tree node loads. workers as in Predict.
func (c *Compiled) PredictSel(x []float32, features int, sel *Selection, out []int, workers int) {
	if sel == nil {
		c.Predict(x, features, out, workers)
		return
	}
	n := sel.Len()
	if n == 0 || sel.Count() == 0 {
		return
	}
	maxProcs := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers > maxProcs {
		workers = maxProcs
	}
	numBlocks := (n + rowBlockSize - 1) / rowBlockSize
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers <= 1 {
		c.predictRangeSel(x, features, sel, out, 0, n)
		return
	}
	blocksPerWorker := (numBlocks + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * blocksPerWorker * rowBlockSize
		hi := lo + blocksPerWorker*rowBlockSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.predictRangeSel(x, features, sel, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// predictRangeSel scores the selected rows of [lo, hi): each 64-row block's
// survivors are gathered once into a compact index list, scored with the
// shared blocked traversal, and written at the block's dense rank offset.
// lo must be block-aligned.
func (c *Compiled) predictRangeSel(x []float32, features int, sel *Selection, out []int, lo, hi int) {
	outPos := sel.Rank(lo)
	var rows [rowBlockSize]int32
	vp := getVotes(rowBlockSize * c.classes)
	votes := *vp
	for base := lo; base < hi; base += rowBlockSize {
		w := sel.words[base/selWordBits]
		if w == 0 {
			continue
		}
		nb := gatherBlock(w, base, &rows)
		c.scoreBlock(x, features, rows[:], nb, out[outPos:outPos+nb], votes)
		outPos += nb
	}
	putVotes(vp)
}

// PredictAggregate fuses scoring with a per-class count: selected rows are
// scored block-wise and their predicted classes tallied into counts
// (length >= NumClasses(), or >= 2 for boosted ensembles) without ever
// materializing a per-row prediction vector. sel may be nil to aggregate
// over every row (n rows of x). Each worker tallies into a private
// histogram; the histograms are summed at the barrier.
func (c *Compiled) PredictAggregate(x []float32, features int, n int, sel *Selection, counts []int64, workers int) {
	classes := c.classes
	if c.boosted && classes < 2 {
		classes = 2
	}
	if len(counts) < classes {
		panic(fmt.Sprintf("kernel: PredictAggregate counts length %d < classes %d", len(counts), classes))
	}
	if sel != nil {
		n = sel.Len()
	}
	if n == 0 {
		return
	}
	maxProcs := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers > maxProcs {
		workers = maxProcs
	}
	numBlocks := (n + rowBlockSize - 1) / rowBlockSize
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers <= 1 {
		c.aggRange(x, features, sel, counts, 0, n)
		return
	}
	blocksPerWorker := (numBlocks + workers - 1) / workers
	locals := make([][]int64, 0, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * blocksPerWorker * rowBlockSize
		hi := lo + blocksPerWorker*rowBlockSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		local := make([]int64, classes)
		locals = append(locals, local)
		wg.Add(1)
		go func(lo, hi int, local []int64) {
			defer wg.Done()
			c.aggRange(x, features, sel, local, lo, hi)
		}(lo, hi, local)
	}
	wg.Wait()
	for _, local := range locals {
		for i, v := range local {
			counts[i] += v
		}
	}
}

// aggRange scores blocks of [lo, hi) (restricted to sel when non-nil) into
// a per-block scratch and tallies the predicted classes, so at most 64
// predictions ever exist at once. lo must be block-aligned.
func (c *Compiled) aggRange(x []float32, features int, sel *Selection, counts []int64, lo, hi int) {
	var rows [rowBlockSize]int32
	var scratch [rowBlockSize]int
	vp := getVotes(rowBlockSize * c.classes)
	votes := *vp
	for base := lo; base < hi; base += rowBlockSize {
		end := base + rowBlockSize
		if end > hi {
			end = hi
		}
		var nb int
		if sel != nil {
			w := sel.words[base/selWordBits]
			if w == 0 {
				continue
			}
			nb = gatherBlock(w, base, &rows)
		} else {
			nb = end - base
			for r := 0; r < nb; r++ {
				rows[r] = int32(base + r)
			}
		}
		c.scoreBlock(x, features, rows[:], nb, scratch[:nb], votes)
		for _, cls := range scratch[:nb] {
			counts[cls]++
		}
	}
	putVotes(vp)
}
