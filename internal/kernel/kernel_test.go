package kernel_test

import (
	"runtime"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/kernel"
)

func trainIris(t testing.TB, trees, depth int) *forest.Forest {
	t.Helper()
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      7,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBuilderHandBuilt exercises the builder API directly: one tree with a
// single split (x0 < 0.5 ? class 0 : class 1).
func TestBuilderHandBuilt(t *testing.T) {
	c := kernel.New(2, false, 0)
	c.BeginTree()
	root := c.EmitSplit(0, 0.5)
	left := c.EmitLeaf(0, 0)
	right := c.EmitLeaf(1, 1)
	c.SetChildren(root, left, right)
	if err := c.Seal(); err != nil {
		t.Fatal(err)
	}
	if c.NumTrees() != 1 || c.NumNodes() != 3 || c.NumClasses() != 2 {
		t.Fatalf("shape: trees=%d nodes=%d classes=%d", c.NumTrees(), c.NumNodes(), c.NumClasses())
	}
	if got := c.PredictRow([]float32{0.2}, nil); got != 0 {
		t.Fatalf("left branch -> %d", got)
	}
	if got := c.PredictRow([]float32{0.9}, nil); got != 1 {
		t.Fatalf("right branch -> %d", got)
	}
	out := make([]int, 4)
	c.Predict([]float32{0.1, 0.6, 0.49, 0.5}, 1, out, 2)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("batch[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

// TestPredictMatchesPointerWalk checks the blocked batch loop against the
// forest's scalar pointer walk at sizes around the block boundaries and at
// every worker count, including rows%rowBlock != 0 tails.
func TestPredictMatchesPointerWalk(t *testing.T) {
	f := trainIris(t, 12, 10)
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 63, 64, 65, 127, 500, 1003} {
		d := dataset.Iris().Replicate(rows)
		features := d.NumFeatures()
		for _, workers := range []int{0, 1, 2, 7, runtime.GOMAXPROCS(0) + 3} {
			out := make([]int, rows)
			c.Predict(d.X, features, out, workers)
			for i := 0; i < rows; i++ {
				if want := f.PredictClass(d.Row(i)); out[i] != want {
					t.Fatalf("rows=%d workers=%d row %d: kernel %d != walk %d",
						rows, workers, i, out[i], want)
				}
			}
		}
	}
}

// TestPredictBoosted checks the margin-aggregation path of the blocked loop.
func TestPredictBoosted(t *testing.T) {
	d := dataset.Higgs(1500, 13)
	f, err := forest.TrainBoosted(d, forest.BoostConfig{NumTrees: 10, MaxDepth: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Boosted() {
		t.Fatal("boosted flag lost")
	}
	out := make([]int, d.NumRecords())
	c.Predict(d.X, d.NumFeatures(), out, 4)
	for i := range out {
		if want := f.PredictClass(d.Row(i)); out[i] != want {
			t.Fatalf("boosted row %d: kernel %d != walk %d", i, out[i], want)
		}
	}
}

// TestCompileAccountsEveryNode verifies the lowering covers the ensemble
// exactly once.
func TestCompileAccountsEveryNode(t *testing.T) {
	f := trainIris(t, 9, 8)
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tr := range f.Trees {
		total += tr.NodeCount()
	}
	if c.NumNodes() != total {
		t.Fatalf("compiled %d nodes, forest has %d", c.NumNodes(), total)
	}
	if c.NumTrees() != len(f.Trees) {
		t.Fatalf("compiled %d trees, forest has %d", c.NumTrees(), len(f.Trees))
	}
}

// TestEmptyBatch must be a no-op.
func TestEmptyBatch(t *testing.T) {
	f := trainIris(t, 2, 4)
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c.Predict(nil, f.NumFeatures, nil, 4)
}
