package kernel_test

import (
	"math"
	"runtime"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/kernel"
)

// filterExpected scores every row densely, then applies the selection —
// the unfused reference the fused path must match bit-for-bit.
func filterExpected(c *kernel.Compiled, x []float32, features, n int, sel *kernel.Selection) []int {
	all := make([]int, n)
	c.Predict(x, features, all, 1)
	out := make([]int, 0, sel.Count())
	for i := 0; i < n; i++ {
		if sel.Selected(i) {
			out = append(out, all[i])
		}
	}
	return out
}

func TestSelectionRankCountSlice(t *testing.T) {
	n := 300
	sel := kernel.SelectionFromFunc(n, func(r int) bool { return r%3 == 0 })
	if sel.Len() != n {
		t.Fatalf("Len = %d", sel.Len())
	}
	want := 0
	for i := 0; i < n; i++ {
		if got := sel.Rank(i); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", i, got, want)
		}
		if i%3 == 0 {
			if !sel.Selected(i) {
				t.Fatalf("row %d should be selected", i)
			}
			want++
		}
	}
	if sel.Count() != want || sel.Rank(n) != want {
		t.Fatalf("Count = %d, Rank(n) = %d, want %d", sel.Count(), sel.Rank(n), want)
	}
	if got := sel.CountRange(64, 192); got != sel.Rank(192)-sel.Rank(64) {
		t.Fatalf("CountRange = %d", got)
	}
	sub := sel.Slice(64, 200)
	if sub.Len() != 136 || sub.Count() != sel.CountRange(64, 200) {
		t.Fatalf("Slice: len=%d count=%d want count %d", sub.Len(), sub.Count(), sel.CountRange(64, 200))
	}
	for i := 0; i < sub.Len(); i++ {
		if sub.Selected(i) != sel.Selected(64+i) {
			t.Fatalf("Slice bit %d disagrees", i)
		}
	}
	rank := 0
	sel.ForEach(func(row, r int) {
		if r != rank || !sel.Selected(row) {
			t.Fatalf("ForEach rank %d row %d out of order", r, row)
		}
		rank++
	})
	if rank != sel.Count() {
		t.Fatalf("ForEach visited %d rows, want %d", rank, sel.Count())
	}
}

func TestBuildSelectionMatchesSQLSemantics(t *testing.T) {
	x := []float32{1, 2, 1.5, 4, float32(math.NaN()), 6, 3, 8}
	aux := []float64{10, 20, 30, 40}
	cases := []struct {
		pred kernel.Predicate
		want []bool
	}{
		{kernel.Predicate{Feature: 0, Op: kernel.PredLT, Value: 2}, []bool{true, true, false, false}},
		{kernel.Predicate{Feature: 0, Op: kernel.PredEQ, Value: 1.5}, []bool{false, true, false, false}},
		// NaN never matches, = or <>, matching compareFloats.
		{kernel.Predicate{Feature: 0, Op: kernel.PredNE, Value: 0}, []bool{true, true, false, true}},
		{kernel.Predicate{Feature: 0, Op: kernel.PredGE, Value: 1.5}, []bool{false, true, false, true}},
		{kernel.Predicate{Feature: -1, Col: aux, Op: kernel.PredLE, Value: 20}, []bool{true, true, false, false}},
	}
	for ci, tc := range cases {
		sel := kernel.BuildSelection(4, []kernel.Predicate{tc.pred}, x, 2)
		for i, want := range tc.want {
			if sel.Selected(i) != want {
				t.Fatalf("case %d row %d: got %v, want %v", ci, i, sel.Selected(i), want)
			}
		}
	}
	// Conjunction: feature pred AND aux pred.
	sel := kernel.BuildSelection(4, []kernel.Predicate{
		{Feature: 1, Op: kernel.PredGT, Value: 2},
		{Feature: -1, Col: aux, Op: kernel.PredLT, Value: 35},
	}, x, 2)
	for i, want := range []bool{false, true, true, false} {
		if sel.Selected(i) != want {
			t.Fatalf("conjunction row %d: got %v, want %v", i, sel.Selected(i), want)
		}
	}
}

// TestPredictSelMatchesScoreThenFilter is the kernel-level fusion
// invariant: fused filter+score must be bit-identical to dense score then
// filter, across block-boundary sizes, worker counts, and selectivities
// including empty and full.
func TestPredictSelMatchesScoreThenFilter(t *testing.T) {
	f := trainIris(t, 12, 10)
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 63, 64, 65, 257, 1003} {
		d := dataset.Iris().Replicate(rows)
		features := d.NumFeatures()
		sels := []*kernel.Selection{
			kernel.SelectionFromFunc(rows, func(r int) bool { return r%7 == 0 }),
			kernel.SelectionFromFunc(rows, func(r int) bool { return r >= rows/2 }),
			kernel.SelectionFromFunc(rows, func(r int) bool { return false }),
			kernel.SelectionFromFunc(rows, func(r int) bool { return true }),
		}
		for si, sel := range sels {
			want := filterExpected(c, d.X, features, rows, sel)
			for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
				got := make([]int, sel.Count())
				c.PredictSel(d.X, features, sel, got, workers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("rows=%d sel=%d workers=%d: pred[%d] = %d, want %d",
							rows, si, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestPredictAggregateMatchesBincount checks the fused score+count path
// against counting the materialized predictions, for vote and boosted
// ensembles, with and without a selection.
func TestPredictAggregateMatchesBincount(t *testing.T) {
	forests := map[string]*forest.Forest{"votes": trainIris(t, 12, 10)}
	bf, err := forest.TrainBoosted(dataset.Higgs(400, 11), forest.BoostConfig{
		NumTrees: 8, MaxDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	forests["boosted"] = bf
	for name, f := range forests {
		c, err := f.Compile()
		if err != nil {
			t.Fatal(err)
		}
		rows := 413
		var d *dataset.Dataset
		if name == "boosted" {
			d = dataset.Higgs(rows, 23)
		} else {
			d = dataset.Iris().Replicate(rows)
		}
		features := d.NumFeatures()
		classes := f.NumClasses
		if classes < 2 {
			classes = 2
		}
		for _, sel := range []*kernel.Selection{
			nil,
			kernel.SelectionFromFunc(rows, func(r int) bool { return r%5 != 0 }),
			kernel.SelectionFromFunc(rows, func(r int) bool { return false }),
		} {
			want := make([]int64, classes)
			preds := make([]int, rows)
			c.Predict(d.X, features, preds, 1)
			for i, p := range preds {
				if sel == nil || sel.Selected(i) {
					want[p]++
				}
			}
			for _, workers := range []int{1, 4} {
				got := make([]int64, classes)
				c.PredictAggregate(d.X, features, rows, sel, got, workers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s sel=%v workers=%d: counts[%d] = %d, want %d",
							name, sel != nil, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestPredictNoAllocsWarm asserts the vote-buffer pool removed the per-call
// allocation in the single-worker batch path.
func TestPredictNoAllocsWarm(t *testing.T) {
	f := trainIris(t, 8, 8)
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Iris().Replicate(200)
	features := d.NumFeatures()
	out := make([]int, 200)
	c.Predict(d.X, features, out, 1) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		c.Predict(d.X, features, out, 1)
	})
	if allocs != 0 {
		t.Fatalf("warm Predict allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkPredictSel(b *testing.B) {
	f := trainIris(b, 64, 10)
	c, err := f.Compile()
	if err != nil {
		b.Fatal(err)
	}
	d := dataset.Iris().Replicate(4096)
	features := d.NumFeatures()
	for _, tc := range []struct {
		name string
		pct  int
	}{{"sel1pct", 1}, {"sel10pct", 10}, {"sel100pct", 100}} {
		sel := kernel.SelectionFromFunc(4096, func(r int) bool { return r%100 < tc.pct })
		out := make([]int, sel.Count())
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.PredictSel(d.X, features, sel, out, 1)
			}
		})
	}
	out := make([]int, 4096)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Predict(d.X, features, out, 1)
		}
	})
}
