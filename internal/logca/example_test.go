package logca_test

import (
	"fmt"
	"time"

	"accelscore/internal/logca"
)

// ExampleModel shows the analytical questions LogCA answers for a
// hypothetical accelerator: when does offload break even, and what is the
// best achievable speedup?
func ExampleModel() {
	m := logca.Model{
		Name:              "example-accelerator",
		Overhead:          2 * time.Millisecond, // o: per-offload setup
		LatencyPerByte:    time.Nanosecond,      // L: 1 GB/s effective
		HostTimePerRecord: 2 * time.Microsecond, // C: host cost per record
		Acceleration:      100,                  // A: accelerator compute gain
		BytesPerRecord:    112,                  // 28 float32 features
	}
	g1, _ := m.G1()
	fmt.Println("break-even records:", g1)
	fmt.Printf("asymptotic speedup: %.1f\n", m.AsymptoticSpeedup())
	fmt.Printf("speedup at 1M records: %.1f\n", m.Speedup(1_000_000))
	// Output:
	// break-even records: 1071
	// asymptotic speedup: 15.2
	// speedup at 1M records: 14.9
}
