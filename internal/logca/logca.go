// Package logca implements the LogCA high-level accelerator performance
// model (Altaf & Wood, ISCA 2017 — the paper's ref [42], cited in §IV-E as
// the kind of performance model that should account for offload overheads).
//
// LogCA abstracts an accelerator with five parameters:
//
//	L — Latency: cycles/time to move one byte (interconnect latency)
//	o — overhead: fixed host-side cost of setting up one offload
//	g — granularity: the offloaded work size (records here)
//	C — Computational index: host time per unit work
//	A — Acceleration: the accelerator's peak speedup over the host
//
// Execution time on the host is T_host(g) = C * g; on the accelerator it is
// T_acc(g) = o + L * bytes(g) + C * g / A. From these, the model derives the
// two quantities the paper's analysis revolves around: g1 (the granularity
// at which offloading breaks even) and g_A/2 (the granularity achieving half
// of the peak acceleration).
//
// The package also fits LogCA parameters to any backend.Backend by probing
// its Estimate timeline, letting the detailed simulators be summarized — and
// sanity-checked — by the analytical model (see the validation tests).
package logca

import (
	"fmt"
	"math"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/forest"
	"accelscore/internal/sim"
)

// Model holds the five LogCA parameters for one (host, accelerator,
// workload-shape) combination. Work is measured in records; data in bytes.
type Model struct {
	// Name identifies the modeled accelerator.
	Name string
	// Overhead is o: fixed per-offload host time.
	Overhead time.Duration
	// LatencyPerByte is L: transfer time per byte moved.
	LatencyPerByte time.Duration
	// HostTimePerRecord is C: host compute time per record.
	HostTimePerRecord time.Duration
	// Acceleration is A: the accelerator's asymptotic speedup on the
	// compute portion.
	Acceleration float64
	// BytesPerRecord converts granularity to transferred bytes.
	BytesPerRecord int64
}

// Validate checks parameter sanity.
func (m Model) Validate() error {
	if m.Overhead < 0 || m.LatencyPerByte < 0 || m.HostTimePerRecord <= 0 {
		return fmt.Errorf("logca: non-positive parameters: %+v", m)
	}
	if m.Acceleration <= 0 {
		return fmt.Errorf("logca: acceleration must be positive, got %v", m.Acceleration)
	}
	if m.BytesPerRecord < 0 {
		return fmt.Errorf("logca: negative bytes per record")
	}
	return nil
}

// HostTime is T_host(g) = C*g.
func (m Model) HostTime(g int64) time.Duration {
	return time.Duration(float64(m.HostTimePerRecord) * float64(g))
}

// AcceleratorTime is T_acc(g) = o + L*bytes + C*g/A.
func (m Model) AcceleratorTime(g int64) time.Duration {
	transfer := float64(m.LatencyPerByte) * float64(g*m.BytesPerRecord)
	compute := float64(m.HostTimePerRecord) * float64(g) / m.Acceleration
	return m.Overhead + time.Duration(transfer+compute)
}

// Speedup is T_host(g) / T_acc(g).
func (m Model) Speedup(g int64) float64 {
	acc := m.AcceleratorTime(g)
	if acc <= 0 {
		return math.Inf(1)
	}
	return float64(m.HostTime(g)) / float64(acc)
}

// G1 returns the break-even granularity: the smallest g with speedup >= 1,
// i.e. where C*g = o + L*bytes(g) + C*g/A. Returns ok=false when the
// accelerator never breaks even (transfer cost per record exceeds the
// compute saving).
func (m Model) G1() (int64, bool) {
	// C*g*(1 - 1/A) = o + L*bpr*g
	// g * (C*(1-1/A) - L*bpr) = o
	saving := float64(m.HostTimePerRecord) * (1 - 1/m.Acceleration)
	perRecordTransfer := float64(m.LatencyPerByte) * float64(m.BytesPerRecord)
	denom := saving - perRecordTransfer
	if denom <= 0 {
		return 0, false
	}
	g := float64(m.Overhead) / denom
	return int64(math.Ceil(g)), true
}

// GHalfA returns g_{A/2}: the granularity at which the achieved speedup
// reaches half of the asymptotic speedup. The asymptotic speedup is
// C / (L*bpr + C/A); g_{A/2} solves speedup(g) = asym/2.
func (m Model) GHalfA() (int64, bool) {
	perRecordAcc := float64(m.LatencyPerByte)*float64(m.BytesPerRecord) +
		float64(m.HostTimePerRecord)/m.Acceleration
	if perRecordAcc <= 0 {
		return 0, false
	}
	// speedup(g) = C*g / (o + perRecordAcc*g); asym = C/perRecordAcc.
	// C*g / (o + pra*g) = C/(2*pra)  =>  2*pra*g = o + pra*g  =>  g = o/pra.
	g := float64(m.Overhead) / perRecordAcc
	return int64(math.Ceil(g)), true
}

// AsymptoticSpeedup is the g->inf speedup bound: C / (L*bpr + C/A).
func (m Model) AsymptoticSpeedup() float64 {
	perRecordAcc := float64(m.LatencyPerByte)*float64(m.BytesPerRecord) +
		float64(m.HostTimePerRecord)/m.Acceleration
	if perRecordAcc <= 0 {
		return math.Inf(1)
	}
	return float64(m.HostTimePerRecord) / perRecordAcc
}

// Fit derives LogCA parameters for an accelerator backend against a host
// backend by probing their Estimate timelines for the given model stats:
//
//   - o comes from the accelerator's time at g=0 (pure overhead),
//   - C from the host's marginal per-record time at large g,
//   - L*bytes + C/A from the accelerator's marginal per-record time, split
//     using the stats' record byte width for the transfer part.
func Fit(name string, host, accel backend.Backend, stats forest.Stats) (Model, error) {
	const probeSmall, probeLarge = 1_000, 10_000_000
	hostSmall, err := host.Estimate(stats, probeSmall)
	if err != nil {
		return Model{}, fmt.Errorf("logca: probing host: %w", err)
	}
	hostLarge, err := host.Estimate(stats, probeLarge)
	if err != nil {
		return Model{}, err
	}
	accZero, err := accel.Estimate(stats, 0)
	if err != nil {
		return Model{}, fmt.Errorf("logca: probing accelerator: %w", err)
	}
	accLarge, err := accel.Estimate(stats, probeLarge)
	if err != nil {
		return Model{}, err
	}

	bytesPerRecord := int64(stats.Features) * 4
	hostPerRecord := float64(hostLarge.Total()-hostSmall.Total()) / float64(probeLarge-probeSmall)
	accPerRecord := float64(accLarge.Total()-accZero.Total()) / float64(probeLarge)
	if hostPerRecord <= 0 || accPerRecord <= 0 {
		return Model{}, fmt.Errorf("logca: non-positive marginal costs (host %v, accel %v)", hostPerRecord, accPerRecord)
	}

	m := Model{
		Name:              name,
		Overhead:          accZero.Total(),
		HostTimePerRecord: time.Duration(hostPerRecord),
		BytesPerRecord:    bytesPerRecord,
	}
	// Split the accelerator's marginal cost into transfer and compute: use
	// the accelerator timeline's own transfer fraction at large g.
	transferFrac := 0.0
	if t := accLarge.Total(); t > 0 {
		transferFrac = float64(accLarge.TotalKind(sim.KindTransfer)) / float64(t)
	}
	transferPerRecord := accPerRecord * transferFrac
	computePerRecord := accPerRecord - transferPerRecord
	if bytesPerRecord > 0 {
		m.LatencyPerByte = time.Duration(transferPerRecord / float64(bytesPerRecord))
	}
	if computePerRecord <= 0 {
		computePerRecord = accPerRecord * 0.01
	}
	m.Acceleration = hostPerRecord / computePerRecord
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}
