package logca

import (
	"math"
	"testing"
	"time"

	"accelscore/internal/forest"
	"accelscore/internal/platform"
)

// testModel is a hand-built LogCA instance with easy arithmetic.
func testModel() Model {
	return Model{
		Name:              "test",
		Overhead:          time.Millisecond,
		LatencyPerByte:    time.Nanosecond, // 1 ns/B
		HostTimePerRecord: time.Microsecond,
		Acceleration:      100,
		BytesPerRecord:    100,
	}
}

func TestValidate(t *testing.T) {
	m := testModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.Acceleration = 0
	if bad.Validate() == nil {
		t.Fatal("zero acceleration accepted")
	}
	bad = m
	bad.HostTimePerRecord = 0
	if bad.Validate() == nil {
		t.Fatal("zero host time accepted")
	}
	bad = m
	bad.BytesPerRecord = -1
	if bad.Validate() == nil {
		t.Fatal("negative bytes accepted")
	}
}

func TestTimes(t *testing.T) {
	m := testModel()
	if got := m.HostTime(1000); got != time.Millisecond {
		t.Fatalf("HostTime = %v", got)
	}
	// acc(1000) = 1ms + 1ns*100KB + 1µs*1000/100 = 1ms + 100µs + 10µs
	want := time.Millisecond + 100*time.Microsecond + 10*time.Microsecond
	if got := m.AcceleratorTime(1000); got != want {
		t.Fatalf("AcceleratorTime = %v, want %v", got, want)
	}
}

func TestG1BreakEven(t *testing.T) {
	m := testModel()
	g1, ok := m.G1()
	if !ok {
		t.Fatal("no break-even found")
	}
	// Check the defining property: below g1 the host wins, at g1 the
	// accelerator does not lose.
	if m.Speedup(g1) < 1 {
		t.Fatalf("speedup at g1=%d is %v < 1", g1, m.Speedup(g1))
	}
	if g1 > 1 && m.Speedup(g1-1) >= 1.0001 {
		t.Fatalf("speedup already >1 below g1 (g1=%d)", g1)
	}
	// Analytic check: g1 = o / (C(1-1/A) - L*bpr)
	// = 1ms / (1µs*0.99 - 100ns) = 1e6ns / 890ns ≈ 1124.
	if g1 < 1100 || g1 > 1150 {
		t.Fatalf("g1 = %d, want ~1124", g1)
	}
}

func TestG1NeverBreaksEven(t *testing.T) {
	m := testModel()
	// Transfer cost per record exceeds compute saving.
	m.LatencyPerByte = time.Microsecond
	if _, ok := m.G1(); ok {
		t.Fatal("break-even reported for transfer-bound accelerator")
	}
}

func TestGHalfAAndAsymptote(t *testing.T) {
	m := testModel()
	asym := m.AsymptoticSpeedup()
	// asym = 1µs / (100ns + 10ns) = 9.09
	if math.Abs(asym-1000.0/110.0) > 0.01 {
		t.Fatalf("asymptotic speedup = %v", asym)
	}
	gHalf, ok := m.GHalfA()
	if !ok {
		t.Fatal("no gHalf")
	}
	got := m.Speedup(gHalf)
	if math.Abs(got-asym/2) > asym*0.01 {
		t.Fatalf("speedup at gHalf = %v, want ~%v", got, asym/2)
	}
	// Speedup is monotone nondecreasing in g.
	prev := 0.0
	for g := int64(1); g <= 1_000_000; g *= 10 {
		s := m.Speedup(g)
		if s < prev {
			t.Fatalf("speedup not monotone at g=%d", g)
		}
		prev = s
	}
}

func TestFitFPGA(t *testing.T) {
	// Fit LogCA to the detailed FPGA simulator against the best large-batch
	// CPU engine and check the analytical model reproduces the simulator's
	// behavior to first order.
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	m, err := Fit("FPGA", tb.SKLearn, tb.FPGA, stats)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted overhead should be the FPGA's ~2 ms invocation floor.
	if m.Overhead < time.Millisecond || m.Overhead > 4*time.Millisecond {
		t.Fatalf("fitted overhead = %v", m.Overhead)
	}
	// The analytical asymptotic speedup should be within 2x of the
	// simulator's observed 1M-record speedup (~80x).
	asym := m.AsymptoticSpeedup()
	if asym < 40 || asym > 200 {
		t.Fatalf("fitted asymptotic speedup = %v, want around 80", asym)
	}
	// Analytical g1 should land in the same decade as the simulator's
	// crossover (~500 records).
	g1, ok := m.G1()
	if !ok {
		t.Fatal("fitted model never breaks even")
	}
	if g1 < 50 || g1 > 5000 {
		t.Fatalf("fitted g1 = %d, want same decade as ~500", g1)
	}
}

func TestFitPredictionsTrackSimulator(t *testing.T) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	m, err := Fit("FPGA", tb.SKLearn, tb.FPGA, stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int64{10_000, 100_000, 1_000_000} {
		sim, err := tb.FPGA.Estimate(stats, g)
		if err != nil {
			t.Fatal(err)
		}
		pred := m.AcceleratorTime(g)
		ratio := float64(pred) / float64(sim.Total())
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("g=%d: LogCA %v vs simulator %v (ratio %.2f)", g, pred, sim.Total(), ratio)
		}
	}
}

func TestFitGPURejectsUnsupported(t *testing.T) {
	tb := platform.New()
	// RAPIDS cannot estimate a 3-class model; Fit must surface the error.
	stats := forest.SyntheticStats(8, 10, 4, 3)
	if _, err := Fit("RAPIDS", tb.SKLearn, tb.RAPIDS, stats); err == nil {
		t.Fatal("Fit accepted an unsupported configuration")
	}
}

func BenchmarkFitAndPredict(b *testing.B) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	for i := 0; i < b.N; i++ {
		m, err := Fit("FPGA", tb.SKLearn, tb.FPGA, stats)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = m.G1()
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	m := testModel()
	m.Overhead = 0
	m.LatencyPerByte = 0
	m.BytesPerRecord = 0
	// Pure compute acceleration: speedup equals A everywhere.
	if s := m.Speedup(1000); math.Abs(s-100) > 1e-9 {
		t.Fatalf("pure-compute speedup = %v, want 100", s)
	}
}

func TestAsymptoteInfiniteWhenFree(t *testing.T) {
	m := testModel()
	m.LatencyPerByte = 0
	m.BytesPerRecord = 0
	m.Acceleration = math.Inf(1)
	if !math.IsInf(m.AsymptoticSpeedup(), 1) {
		t.Fatalf("free accelerator should have infinite asymptote, got %v", m.AsymptoticSpeedup())
	}
}

func TestGHalfAZeroOverhead(t *testing.T) {
	m := testModel()
	m.Overhead = 0
	g, ok := m.GHalfA()
	if !ok || g != 0 {
		t.Fatalf("zero-overhead gHalf = %d ok=%v, want 0", g, ok)
	}
}

func TestFitRejectsUnsupportedHost(t *testing.T) {
	tb := platform.New()
	// Swap roles: RAPIDS as host cannot estimate a 3-class model.
	stats := forest.SyntheticStats(8, 10, 4, 3)
	if _, err := Fit("X", tb.RAPIDS, tb.FPGA, stats); err == nil {
		t.Fatal("unsupported host accepted")
	}
}

func TestFitHB(t *testing.T) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	m, err := Fit("GPU_HB", tb.SKLearn, tb.HB, stats)
	if err != nil {
		t.Fatal(err)
	}
	// HB's asymptote is far below the FPGA's (visit rate 4.4G vs the PE
	// array), around 12x.
	if a := m.AsymptoticSpeedup(); a < 6 || a > 25 {
		t.Fatalf("HB asymptote = %v, want ~12", a)
	}
}
