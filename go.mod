module accelscore

go 1.22
