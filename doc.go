// Package accelscore reproduces "Hardware Acceleration for DBMS Machine
// Learning Scoring: Is It Worth the Overheads?" (Azad, Sen, Park, Joshi —
// ISPASS 2021) as a pure-Go system: a random-forest library, calibrated
// functional simulators for the paper's CPU/GPU/FPGA scoring backends, a
// mini-DBMS with an external-runtime scoring pipeline, and an offload
// advisor that reproduces every figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and the
// hardware-substitution rationale, and EXPERIMENTS.md for paper-vs-measured
// results. The root-level benchmarks in bench_test.go regenerate each
// figure; cmd/repro renders them as text.
package accelscore
