package accelscore_test

import (
	"fmt"
	"testing"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/experiments"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
)

// This file holds one benchmark per paper table/figure (DESIGN.md §4) plus
// the design-choice ablations (DESIGN.md §5). The figure benchmarks measure
// the cost of regenerating the figure's data and attach the figure's key
// simulated ratio as a custom metric, so `go test -bench=.` both exercises
// the harness and reports the reproduced numbers.

// BenchmarkFig1Shmoo regenerates the Fig. 1 optimal-backend concept grid.
func BenchmarkFig1Shmoo(b *testing.B) {
	tb := platform.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Advisor.Shmoo("IRIS", 4, 3, 10, experiments.RecordSweep, experiments.TreeSweep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7FPGABreakdown regenerates the FPGA scoring-time breakdowns.
func BenchmarkFig7FPGABreakdown(b *testing.B) {
	s := experiments.NewSuite()
	var rows []experiments.Fig7Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = s.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
	// Report the 1-record HIGGS/128-tree overall time in microseconds.
	for _, r := range rows {
		if r.Records == 1 && r.Dataset == "HIGGS" && r.Trees == 128 {
			b.ReportMetric(float64(r.Total.Microseconds()), "1rec-total-µs")
		}
	}
}

// BenchmarkFig8OptimalBackend regenerates both shmoo grids with speedups.
func BenchmarkFig8OptimalBackend(b *testing.B) {
	s := experiments.NewSuite()
	var higgs *experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		if _, err = s.Fig8(experiments.IrisShape); err != nil {
			b.Fatal(err)
		}
		if higgs, err = s.Fig8(experiments.HiggsShape); err != nil {
			b.Fatal(err)
		}
	}
	last := higgs.Cells[len(higgs.Cells)-1]
	b.ReportMetric(last[len(last)-1].Speedup, "higgs-1M-128t-speedup")
}

// BenchmarkFig9Latency regenerates all eight latency panels.
func BenchmarkFig9Latency(b *testing.B) {
	s := experiments.NewSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Throughput regenerates all eight throughput panels and
// reports the FPGA's peak throughput on the flagship panel.
func BenchmarkFig10Throughput(b *testing.B) {
	s := experiments.NewSuite()
	var panels []experiments.Fig10Panel
	var err error
	for i := 0; i < b.N; i++ {
		if panels, err = s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range panels {
		if p.Label == "h" {
			_, peak := p.PeakThroughput()
			b.ReportMetric(peak/1e6, "peak-Mscorings/s")
		}
	}
}

// BenchmarkFig11EndToEnd regenerates the end-to-end query breakdowns and
// reports the paper's ~2.6x HIGGS/1M query speedup.
func BenchmarkFig11EndToEnd(b *testing.B) {
	s := experiments.NewSuite()
	var rows []experiments.Fig11Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = s.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
	if sp, err := experiments.QuerySpeedup(rows, "HIGGS", 128, 1_000_000); err == nil {
		b.ReportMetric(sp, "e2e-speedup")
	}
}

// BenchmarkHeadlineRatios recomputes the §IV-C headline numbers.
func BenchmarkHeadlineRatios(b *testing.B) {
	s := experiments.NewSuite()
	var hs []experiments.Headline
	var err error
	for i := 0; i < b.N; i++ {
		if hs, err = s.Headlines(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(hs[0].FPGASpeedup, "iris-fpga-x")
	b.ReportMetric(hs[1].FPGASpeedup, "higgs-fpga-x")
}

// --- Design-choice ablations (DESIGN.md §5) ---

// BenchmarkAblationFPGAStreamOverlap quantifies the record-stream/compute
// overlap of §IV-B: the metric is the slowdown from disabling it at 1M HIGGS
// records.
func BenchmarkAblationFPGAStreamOverlap(b *testing.B) {
	tb := platform.New()
	stats := forest.SyntheticStats(1, 10, 28, 2)
	var ratio float64
	for i := 0; i < b.N; i++ {
		with, err := tb.FPGA.Estimate(stats, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		without, err := tb.FPGA.WithoutOverlap().Estimate(stats, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(without.Total()) / float64(with.Total())
	}
	b.ReportMetric(ratio, "no-overlap-slowdown")
}

// BenchmarkAblationFPGABRAMSpill quantifies the BRAM-residency advantage the
// paper credits for the FPGA's win (§IV-C1): scoring slowdown when tree
// memories spill to device DRAM.
func BenchmarkAblationFPGABRAMSpill(b *testing.B) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 4, 3)
	spilled := tb.FPGA.WithBRAMBytes(1 << 20)
	var ratio float64
	for i := 0; i < b.N; i++ {
		fit, err := tb.FPGA.Estimate(stats, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := spilled.Estimate(stats, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(sp.Total()) / float64(fit.Total())
	}
	b.ReportMetric(ratio, "spill-slowdown")
}

// BenchmarkAblationRAPIDSConvertCost isolates the ~120 ms cuDF conversion
// that moves the RAPIDS/Hummingbird crossover (§IV-C2).
func BenchmarkAblationRAPIDSConvertCost(b *testing.B) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	noConvert := tb.RAPIDS.WithoutConvertCost()
	var deltaMs float64
	for i := 0; i < b.N; i++ {
		with, err := tb.RAPIDS.Estimate(stats, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		without, err := noConvert.Estimate(stats, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		deltaMs = float64((with.Total() - without.Total()).Milliseconds())
	}
	b.ReportMetric(deltaMs, "convert-cost-ms")
}

// BenchmarkAblationPipelineIntegration compares the external-Python pipeline
// with the §IV-E tightly-integrated alternative at 1M HIGGS records.
func BenchmarkAblationPipelineIntegration(b *testing.B) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	loose := &pipeline.Pipeline{Runtime: hw.DefaultRuntime(), Registry: tb.Registry}
	tight := &pipeline.Pipeline{Runtime: hw.TightlyIntegratedRuntime(), Registry: tb.Registry}
	var ratio float64
	for i := 0; i < b.N; i++ {
		lt, _, err := loose.Estimate(stats, 1_000_000, 1<<21, "FPGA")
		if err != nil {
			b.Fatal(err)
		}
		tt, _, err := tight.Estimate(stats, 1_000_000, 1<<21, "FPGA")
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(lt.Total()) / float64(tt.Total())
	}
	b.ReportMetric(ratio, "tight-integration-x")
}

// BenchmarkAblationAdvisorPolicies compares static always-CPU and
// always-FPGA placement with the advisor's oracle across the Fig. 8 grid:
// the metric is total simulated time of each policy over the sweep,
// reproducing the wrong-decision penalties as an aggregate.
func BenchmarkAblationAdvisorPolicies(b *testing.B) {
	tb := platform.New()
	var cpuTotal, fpgaTotal, oracleTotal float64
	for i := 0; i < b.N; i++ {
		cpuTotal, fpgaTotal, oracleTotal = 0, 0, 0
		for _, n := range experiments.RecordSweep {
			for _, trees := range experiments.TreeSweep {
				cfg := core.Config{Features: 28, Classes: 2, Trees: trees, Depth: 10, Records: n}
				d, err := tb.Advisor.Decide(cfg)
				if err != nil {
					b.Fatal(err)
				}
				oracleTotal += d.Best.Time.Seconds()
				cpuTotal += d.BestCPU.Time.Seconds()
				ftl, err := tb.FPGA.Estimate(cfg.Stats(), n)
				if err != nil {
					b.Fatal(err)
				}
				fpgaTotal += ftl.Total().Seconds()
			}
		}
	}
	b.ReportMetric(cpuTotal/oracleTotal, "always-cpu-vs-oracle")
	b.ReportMetric(fpgaTotal/oracleTotal, "always-fpga-vs-oracle")
}

// --- Functional wall-clock benchmarks of the Go implementations ---

// BenchmarkFunctionalAllBackends measures the real Go execution cost of
// scoring 2K HIGGS records on each backend's functional simulator.
func BenchmarkFunctionalAllBackends(b *testing.B) {
	tb := platform.New()
	data := dataset.Higgs(2000, 1)
	f, err := forest.Train(dataset.Higgs(1500, 9), forest.ForestConfig{
		NumTrees:  16,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	req := &backend.Request{Forest: f, Data: data}
	for _, be := range tb.AllBackends() {
		b.Run(be.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := be.Score(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Hot-path benchmarks (compiled-model cache + flat kernel + bulk moves) ---

// hotPathPipeline builds a pipeline over a DB holding a HIGGS-shaped table
// and a trained model, with or without the compiled-model cache.
func hotPathPipeline(b *testing.B, f *forest.Forest, data *dataset.Dataset, cached bool) *pipeline.Pipeline {
	b.Helper()
	tb := platform.New()
	d := db.New()
	tbl, err := db.TableFromDataset("higgs", data)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		b.Fatal(err)
	}
	if err := d.StoreModel("higgs_rf", f); err != nil {
		b.Fatal(err)
	}
	p := &pipeline.Pipeline{DB: d, Runtime: hw.DefaultRuntime(), Registry: tb.Registry}
	if cached {
		p.Cache = pipeline.NewModelCache(8)
	}
	return p
}

// BenchmarkPipelineHotPath measures the real wall-clock cost of a repeated
// EXEC sp_score_model query in the paper's overhead-dominated regime (small
// record counts, production-sized model — Fig. 11's point is that model and
// data pre-processing dominate exactly there). "cold" is the pre-PR path: no
// cache, so every query re-deserializes the model blob, recomputes its
// stats, re-lowers it to the flat kernel and re-converts the input table.
// "warm" is the cached hot path after one priming query. The acceptance bar
// is a >= 2x warm speedup with byte-identical predictions.
func BenchmarkPipelineHotPath(b *testing.B) {
	const query = "EXEC sp_score_model @model='higgs_rf', @data='higgs', @backend='CPU_SKLearn'"
	f, err := forest.Train(dataset.Higgs(1500, 9), forest.ForestConfig{
		NumTrees:  64,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, rows := range []int{64, 256} {
		data := dataset.Higgs(rows, 1)
		b.Run(fmt.Sprintf("cold/rows=%d", rows), func(b *testing.B) {
			p := hotPathPipeline(b, f, data, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ExecQuery(query); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("warm/rows=%d", rows), func(b *testing.B) {
			p := hotPathPipeline(b, f, data, true)
			if _, err := p.ExecQuery(query); err != nil { // prime the caches
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := p.ExecQuery(query)
				if err != nil {
					b.Fatal(err)
				}
				if !res.CacheHit {
					b.Fatal("warm query missed the cache")
				}
			}
		})
		// The two observed variants bracket the cost of per-query resource
		// attribution on the warm path: warm+obs pays for metrics and
		// tracing, warm+attrib adds the thread pinning and cost sampling on
		// top. The attribution acceptance bar is warm+attrib within 5% of
		// warm+obs.
		for _, attrib := range []bool{false, true} {
			name := fmt.Sprintf("warm+obs/rows=%d", rows)
			if attrib {
				name = fmt.Sprintf("warm+attrib/rows=%d", rows)
			}
			b.Run(name, func(b *testing.B) {
				p := hotPathPipeline(b, f, data, true)
				o := obs.NewObserver()
				o.Attribution = attrib
				p.Obs = o
				if _, err := p.ExecQuery(query); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := p.ExecQuery(query)
					if err != nil {
						b.Fatal(err)
					}
					if attrib && res.Attribution == nil {
						b.Fatal("attribution missing from observed query")
					}
				}
			})
		}
	}
}

// BenchmarkKernelPredict compares the shared flat kernel's blocked batch
// loop against the scalar pointer walk it replaced, single-threaded so the
// layout effect is isolated from parallelism.
func BenchmarkKernelPredict(b *testing.B) {
	data := dataset.Higgs(20000, 1)
	f, err := forest.Train(dataset.Higgs(1500, 9), forest.ForestConfig{
		NumTrees:  32,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := f.Compile()
	if err != nil {
		b.Fatal(err)
	}
	n := data.NumRecords()
	out := make([]int, n)
	b.Run("flat-kernel-1th", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compiled.Predict(data.X, data.NumFeatures(), out, 1)
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	})
	b.Run("flat-kernel-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compiled.Predict(data.X, data.NumFeatures(), out, 0)
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	})
	b.Run("pointer-walk-1th", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < n; r++ {
				out[r] = f.PredictClass(data.Row(r))
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	})
}

// BenchmarkKernelCompile measures the per-model lowering cost the cache
// amortizes away.
func BenchmarkKernelCompile(b *testing.B) {
	f, err := forest.Train(dataset.Higgs(1500, 9), forest.ForestConfig{
		NumTrees:  32,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalTraining measures forest induction cost.
func BenchmarkFunctionalTraining(b *testing.B) {
	data := dataset.Higgs(2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Train(data, forest.ForestConfig{
			NumTrees:  8,
			Tree:      forest.TrainConfig{MaxDepth: 8},
			Seed:      uint64(i),
			Bootstrap: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
